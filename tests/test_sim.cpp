#include "sim/fault_sim.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchdata/handwritten.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::sim {
namespace {

fsm::FsmCircuit circuit_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

TEST(Faults, EnumerationSkipsConstants) {
  logic::Netlist n;
  const auto a = n.add_input("a");
  n.add_const(true);
  const auto g = n.add_gate(logic::GateType::kNot, {a});
  n.mark_output(g, "f");
  FaultListOptions opts;
  opts.collapse = false;
  const auto faults = enumerate_stuck_at(n, opts);
  // 2 nets (input + gate) x 2 polarities.
  EXPECT_EQ(faults.size(), 4u);
  for (const auto& f : faults) {
    EXPECT_NE(n.gate(f.net).type, logic::GateType::kConst1);
  }
}

TEST(Faults, CollapsingDropsControlledInputFaults) {
  logic::Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(logic::GateType::kAnd, {a, b});
  n.mark_output(g, "f");
  const auto full = enumerate_stuck_at(n, FaultListOptions{false});
  const auto collapsed = enumerate_stuck_at(n, FaultListOptions{true});
  EXPECT_EQ(full.size(), 6u);
  // a/SA0 and b/SA0 collapse onto g/SA0 (single-fanout nets).
  EXPECT_EQ(collapsed.size(), 4u);
  for (const auto& f : collapsed) {
    if (f.net == a || f.net == b) {
      EXPECT_TRUE(f.stuck_value);
    }
  }
}

TEST(Faults, CollapsingPreservesDetectionEquivalence) {
  // Every dropped fault must be output-equivalent to some kept fault on
  // every input pattern.
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto full = enumerate_stuck_at(c.netlist, FaultListOptions{false});
  const auto kept = enumerate_stuck_at(c.netlist, FaultListOptions{true});
  ASSERT_LT(kept.size(), full.size());

  const int vars = c.r() + c.s();
  auto signature = [&](const StuckAtFault& f) {
    std::vector<std::uint64_t> sig;
    const logic::Injection inj = f.injection();
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << vars); ++a) {
      sig.push_back(c.netlist.eval_single(a, &inj));
    }
    return sig;
  };
  std::set<std::vector<std::uint64_t>> kept_sigs;
  for (const auto& f : kept) kept_sigs.insert(signature(f));
  for (const auto& f : full) {
    EXPECT_TRUE(kept_sigs.count(signature(f)))
        << "dropped fault " << f.to_string() << " has no kept equivalent";
  }
}

TEST(FaultSim, AllInputsMatchesSingleEval) {
  const fsm::FsmCircuit c = circuit_for("vending");
  for (std::uint64_t code = 0; code < 4; ++code) {
    const auto rows = simulate_all_inputs(c, code);
    for (std::uint64_t a = 0; a < rows.size(); ++a) {
      EXPECT_EQ(rows[a], c.eval(a, code)) << "code " << code << " a " << a;
    }
  }
}

TEST(FaultSim, AllInputsMatchesSingleEvalWithFault) {
  const fsm::FsmCircuit c = circuit_for("arbiter");
  const auto faults = enumerate_stuck_at(c.netlist);
  ASSERT_FALSE(faults.empty());
  // Spot-check a few faults across the list.
  for (std::size_t fi = 0; fi < faults.size(); fi += 7) {
    const logic::Injection inj = faults[fi].injection();
    const auto rows = simulate_all_inputs(c, 2, &inj);
    for (std::uint64_t a = 0; a < rows.size(); ++a) {
      EXPECT_EQ(rows[a], c.eval(a, 2, &inj));
    }
  }
}

TEST(FaultSim, WideInputMachineBatches) {
  // > 64 input combinations exercises the multi-batch path.
  const char* wide = R"(.i 7
.o 1
------- A B 1
------1 B A 0
------0 B B 1
.e
)";
  const fsm::Fsm f = fsm::Fsm::from_kiss(kiss::parse(wide));
  const fsm::FsmCircuit c = fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto rows = simulate_all_inputs(c, 0);
  ASSERT_EQ(rows.size(), 128u);
  for (std::uint64_t a = 0; a < 128; ++a) {
    EXPECT_EQ(rows[a], c.eval(a, 0));
  }
}

TEST(FaultSim, GoldenCacheIsConsistent) {
  const fsm::FsmCircuit c = circuit_for("modulo5");
  GoldenCache cache(c);
  const auto& r1 = cache.rows(1);
  const auto& r2 = cache.rows(1);
  EXPECT_EQ(&r1, &r2);  // cached
  EXPECT_EQ(r1, simulate_all_inputs(c, 1));
}

TEST(FaultSim, ReachableCodesCoversStgReachable) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto codes = reachable_codes(c, c.enc.reset_code);
  // All 7 STG states are reachable; their codes must all appear.
  std::set<std::uint64_t> set(codes.begin(), codes.end());
  for (std::uint64_t code : c.enc.encoding.codes) {
    EXPECT_TRUE(set.count(code)) << code;
  }
}

TEST(FaultSim, ReachableCodesClosedUnderTransition) {
  const fsm::FsmCircuit c = circuit_for("seq_detect");
  const auto codes = reachable_codes(c, c.enc.reset_code);
  std::set<std::uint64_t> set(codes.begin(), codes.end());
  for (std::uint64_t code : codes) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      EXPECT_TRUE(set.count(c.next_state_of(c.eval(a, code))));
    }
  }
}

}  // namespace
}  // namespace ced::sim
