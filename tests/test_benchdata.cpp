#include "benchdata/suite.hpp"

#include <gtest/gtest.h>

#include "benchdata/generator.hpp"
#include "benchdata/handwritten.hpp"
#include "fsm/analysis.hpp"
#include "kiss/kiss.hpp"

namespace ced::benchdata {
namespace {

TEST(Handwritten, AllParseAndAreDeterministic) {
  for (const auto& e : handwritten_fsms()) {
    const fsm::Fsm f = fsm::Fsm::from_kiss(kiss::parse(e.kiss));
    EXPECT_GE(f.num_states(), 2) << e.name;
    EXPECT_TRUE(f.is_complete()) << e.name;
    const auto reach = f.reachable_states();
    for (int s = 0; s < f.num_states(); ++s) {
      EXPECT_TRUE(reach[static_cast<std::size_t>(s)])
          << e.name << " state " << f.state_name(s);
    }
  }
}

TEST(Handwritten, UnknownNameThrows) {
  EXPECT_THROW(handwritten_kiss("nope"), std::invalid_argument);
}

TEST(Generator, DeterministicForSeed) {
  SyntheticSpec spec;
  spec.inputs = 3;
  spec.states = 9;
  spec.outputs = 4;
  spec.seed = 77;
  EXPECT_EQ(generate_kiss(spec), generate_kiss(spec));
  SyntheticSpec other = spec;
  other.seed = 78;
  EXPECT_NE(generate_kiss(spec), generate_kiss(other));
}

TEST(Generator, ProducesCompleteDeterministicMachines) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    SyntheticSpec spec;
    spec.inputs = 4;
    spec.states = 11;
    spec.outputs = 3;
    spec.branches = 5;
    spec.seed = seed;
    const fsm::Fsm f = generate_fsm(spec);
    EXPECT_EQ(f.num_states(), 11);
    EXPECT_TRUE(f.is_complete());
  }
}

TEST(Generator, AllStatesReachable) {
  SyntheticSpec spec;
  spec.inputs = 2;
  spec.states = 30;
  spec.outputs = 2;
  spec.seed = 5;
  const fsm::Fsm f = generate_fsm(spec);
  const auto reach = f.reachable_states();
  for (int s = 0; s < f.num_states(); ++s) {
    EXPECT_TRUE(reach[static_cast<std::size_t>(s)]);
  }
}

TEST(Generator, SelfLoopBiasShapesStructure) {
  SyntheticSpec loopy;
  loopy.inputs = 3;
  loopy.states = 20;
  loopy.outputs = 2;
  loopy.branches = 6;
  loopy.self_loop_bias = 0.6;
  loopy.seed = 9;
  SyntheticSpec sparse = loopy;
  sparse.self_loop_bias = 0.02;
  const auto st_loopy = fsm::analyze_stg(generate_fsm(loopy));
  const auto st_sparse = fsm::analyze_stg(generate_fsm(sparse));
  EXPECT_GT(st_loopy.num_self_loops, st_sparse.num_self_loops);
}

TEST(Generator, BranchesClampToInputSpace) {
  SyntheticSpec spec;
  spec.inputs = 2;
  spec.states = 4;
  spec.outputs = 1;
  spec.branches = 100;  // > 2^2
  const fsm::Fsm f = generate_fsm(spec);
  for (int s = 0; s < f.num_states(); ++s) {
    EXPECT_LE(f.edges_from(s).size(), 4u);
  }
}

TEST(Generator, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.inputs = 0;
  EXPECT_THROW(generate_kiss(spec), std::invalid_argument);
  spec.inputs = 2;
  spec.states = 1;
  EXPECT_THROW(generate_kiss(spec), std::invalid_argument);
}

TEST(Suite, HasAllSixteenTable1Circuits) {
  const auto& suite = mcnc_suite();
  EXPECT_EQ(suite.size(), 16u);
  for (const char* name :
       {"cse", "donfile", "dk14", "dk16", "ex1", "keyb", "pma", "sse", "styr",
        "s27", "s298", "s386", "s1488", "tav", "tbk", "tma"}) {
    bool found = false;
    for (const auto& e : suite) {
      if (e.name == name) found = true;
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST(Suite, ProfilesMatchPublishedInterfaces) {
  // Spot-check the published LGSynth'91 interface widths.
  for (const auto& e : mcnc_suite()) {
    if (e.name == "cse") {
      EXPECT_EQ(e.spec.inputs, 7);
      EXPECT_EQ(e.spec.states, 16);
      EXPECT_EQ(e.spec.outputs, 7);
    } else if (e.name == "styr") {
      EXPECT_EQ(e.spec.inputs, 9);
      EXPECT_EQ(e.spec.states, 30);
      EXPECT_EQ(e.spec.outputs, 10);
    } else if (e.name == "s27") {
      EXPECT_EQ(e.spec.inputs, 4);
      EXPECT_EQ(e.spec.states, 6);
      EXPECT_EQ(e.spec.outputs, 1);
    }
  }
}

TEST(Suite, SmallSuiteBuildsQuickly) {
  for (const auto& name : small_suite_names()) {
    const fsm::Fsm f = suite_fsm(name);
    EXPECT_GE(f.num_states(), 2) << name;
  }
}

TEST(Suite, LoopyProfilesAreLoopy) {
  // §5: donfile/s27/s386 saturate early because of self-loops.
  const auto loopy = fsm::analyze_stg(suite_fsm("donfile"));
  const auto sparse = fsm::analyze_stg(suite_fsm("pma"));
  const double loopy_rate =
      static_cast<double>(loopy.states_with_self_loop) / loopy.num_states;
  const double sparse_rate =
      static_cast<double>(sparse.states_with_self_loop) / sparse.num_states;
  EXPECT_GT(loopy_rate, sparse_rate);
}

TEST(Suite, UnknownCircuitThrows) {
  EXPECT_THROW(suite_fsm("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace ced::benchdata
