#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/algorithm1.hpp"
#include "core/exact.hpp"
#include "core/extract.hpp"
#include "core/greedy.hpp"
#include "core/ilp.hpp"
#include "core/parity.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

DetectabilityTable table_for(const std::string& name, int p) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = p;
  return extract_cases(c, faults, opts);
}

/// Hand-crafted table for unit-level checks.
DetectabilityTable tiny_table() {
  DetectabilityTable t;
  t.num_bits = 4;
  t.latency = 2;
  auto add = [&](std::initializer_list<std::uint64_t> diffs) {
    ErroneousCase ec;
    ec.length = static_cast<std::uint8_t>(diffs.size());
    int k = 0;
    for (auto d : diffs) ec.diff[static_cast<std::size_t>(k++)] = d;
    t.cases.push_back(ec);
  };
  add({0b0001});          // only bit 0 at step 1
  add({0b0110});          // bits 1,2 at step 1
  add({0b1000, 0b0001});  // bit 3 at step 1 or bit 0 at step 2
  return t;
}

TEST(ParityCover, SingleBitDetection) {
  const DetectabilityTable t = tiny_table();
  EXPECT_TRUE(covers(0b0001, t.cases[0]));
  EXPECT_FALSE(covers(0b0010, t.cases[0]));
  // Even overlap does not detect.
  EXPECT_FALSE(covers(0b0110, t.cases[1]));
  EXPECT_TRUE(covers(0b0010, t.cases[1]));
  EXPECT_TRUE(covers(0b0100, t.cases[1]));
}

TEST(ParityCover, LatencyStepsAreAlternatives) {
  const DetectabilityTable t = tiny_table();
  // Case 2 is covered either via bit 3 (step 1) or bit 0 (step 2).
  EXPECT_TRUE(covers(0b1000, t.cases[2]));
  EXPECT_TRUE(covers(0b0001, t.cases[2]));
  EXPECT_FALSE(covers(0b0010, t.cases[2]));
}

TEST(ParityCover, CoversAllAndUncovered) {
  const DetectabilityTable t = tiny_table();
  const std::vector<ParityFunc> good{0b0001, 0b0010};
  EXPECT_TRUE(covers_all(good, t));
  EXPECT_TRUE(uncovered_cases(good, t).empty());
  const std::vector<ParityFunc> bad{0b0110};
  const auto u = uncovered_cases(bad, t);
  ASSERT_EQ(u.size(), 3u);  // 0b0110 covers nothing here
}

TEST(ParityCover, UncoveredAmongSubset) {
  const DetectabilityTable t = tiny_table();
  const std::vector<ParityFunc> betas{0b0001};
  const std::vector<std::uint32_t> rows{1, 2};
  const auto u = uncovered_among(betas, t, rows);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], 1u);
}

TEST(ParityCover, PruneDropsRedundantTrees) {
  const DetectabilityTable t = tiny_table();
  const std::vector<ParityFunc> betas{0b0001, 0b0010, 0b1000};
  const auto pruned = prune_redundant(betas, t);
  EXPECT_EQ(pruned.size(), 2u);
  EXPECT_TRUE(covers_all(pruned, t));
}

TEST(Greedy, CoversEverything) {
  for (const char* name : {"seq_detect", "traffic", "vending", "link_rx"}) {
    for (int p : {1, 2}) {
      const DetectabilityTable t = table_for(name, p);
      const auto sol = greedy_cover(t);
      EXPECT_TRUE(covers_all(sol, t)) << name << " p=" << p;
      EXPECT_GE(sol.size(), 1u);
    }
  }
}

TEST(Greedy, SamplingPathStillCompletes) {
  const DetectabilityTable t = table_for("link_rx", 3);
  GreedyOptions opts;
  opts.sample_cap = 10;  // force many sample rounds
  const auto sol = greedy_cover(t, opts);
  EXPECT_TRUE(covers_all(sol, t));
}

TEST(Greedy, DeterministicForSeed) {
  const DetectabilityTable t = table_for("vending", 2);
  const auto a = greedy_cover(t);
  const auto b = greedy_cover(t);
  EXPECT_EQ(a, b);
}

TEST(Exact, OptimalOnTinyTable) {
  const DetectabilityTable t = tiny_table();
  const auto sol = exact_min_cover(t);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(covers_all(*sol, t));
  // beta = {b0, b1} covers all three cases alone: odd overlap with 0001
  // and 0110 at step 1, and with 0001 at step 2 of the third case.
  EXPECT_EQ(sol->size(), 1u);
}

TEST(Exact, TwoTreesWhenStepsConflict) {
  // Force a genuine q=2 instance: two cases whose only detecting bits are
  // disjoint singletons that no single parity can both hit oddly along
  // with a case that excludes their union.
  DetectabilityTable t;
  t.num_bits = 2;
  t.latency = 1;
  ErroneousCase a, b, c;
  a.length = b.length = c.length = 1;
  a.diff[0] = 0b01;  // needs bit 0
  b.diff[0] = 0b10;  // needs bit 1
  c.diff[0] = 0b11;  // needs exactly one of bit 0 / bit 1
  t.cases = {a, b, c};
  // {b0,b1} covers a and b but overlaps c evenly; so one tree cannot do
  // all three.
  const auto sol = exact_min_cover(t);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(covers_all(*sol, t));
  EXPECT_EQ(sol->size(), 2u);
}

TEST(Exact, RefusesWideTables) {
  DetectabilityTable t;
  t.num_bits = 20;
  t.latency = 1;
  ErroneousCase ec;
  ec.length = 1;
  ec.diff[0] = 1;
  t.cases.push_back(ec);
  ExactOptions opts;
  opts.max_bits = 14;
  EXPECT_FALSE(exact_min_cover(t, opts).has_value());
}

TEST(Exact, EmptyTableNeedsNothing) {
  DetectabilityTable t;
  t.num_bits = 4;
  t.latency = 1;
  const auto sol = exact_min_cover(t);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(sol->empty());
}

TEST(Algorithm1, SolveForQFindsKnownCover) {
  const DetectabilityTable t = tiny_table();
  const auto sol = solve_for_q(t, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(covers_all(*sol, t));
  EXPECT_LE(sol->size(), 2u);
}

TEST(Algorithm1, MatchesExactOnRealMachines) {
  // On machines small enough for the exact solver, Algorithm 1 should land
  // within one tree of the optimum (randomized rounding + repair).
  for (const char* name : {"seq_detect", "traffic", "vending"}) {
    const DetectabilityTable t = table_for(name, 2);
    const auto exact = exact_min_cover(t);
    ASSERT_TRUE(exact.has_value()) << name;
    Algorithm1Stats stats;
    const auto sol = minimize_parity_functions(t, {}, &stats);
    EXPECT_TRUE(covers_all(sol, t)) << name;
    EXPECT_LE(sol.size(), exact->size() + 1) << name;
    EXPECT_GE(sol.size(), exact->size()) << name;
  }
}

TEST(Algorithm1, NeverWorseThanGreedy) {
  for (const char* name : {"arbiter", "modulo5", "link_rx"}) {
    for (int p : {1, 2, 3}) {
      const DetectabilityTable t = table_for(name, p);
      const auto g = greedy_cover(t);
      const auto a = minimize_parity_functions(t);
      EXPECT_TRUE(covers_all(a, t)) << name << " p=" << p;
      EXPECT_LE(a.size(), g.size()) << name << " p=" << p;
    }
  }
}

TEST(Algorithm1, EmptyTable) {
  DetectabilityTable t;
  t.num_bits = 4;
  t.latency = 1;
  Algorithm1Stats stats;
  EXPECT_TRUE(minimize_parity_functions(t, {}, &stats).empty());
  EXPECT_EQ(stats.final_q, 0);
}

TEST(Algorithm1, MonotoneInLatency) {
  // More latency -> more detection alternatives -> never more trees
  // (up to rounding noise; assert non-strict monotonicity with slack 0).
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("link_rx")));
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  ExtractOptions opts;
  opts.latency = 3;
  const auto multi = extract_cases_multi(c, faults, opts);
  std::size_t prev = 1000;
  std::vector<ParityFunc> warm;
  for (int p : {1, 2, 3}) {
    const auto sol = minimize_parity_functions(
        multi[static_cast<std::size_t>(p - 1)], {}, nullptr, warm);
    EXPECT_LE(sol.size(), prev) << "p=" << p;
    prev = sol.size();
    warm = sol;
  }
}

// ---- LP formulation equivalence (Statement 5 vs reduced form).

TEST(Algorithm1, Statement5FormulationAlsoSolves) {
  const DetectabilityTable t = tiny_table();
  Algorithm1Options opts;
  opts.use_statement5 = true;
  const auto sol = solve_for_q(t, 2, opts);
  ASSERT_TRUE(sol.has_value());
  EXPECT_TRUE(covers_all(*sol, t));
}

TEST(Algorithm1, WarmStartIsHonored) {
  const DetectabilityTable t = tiny_table();
  // A valid single-tree cover used as warm start must never be worsened.
  const std::vector<ParityFunc> warm{0b0011};
  ASSERT_TRUE(covers_all(warm, t));
  const auto sol = minimize_parity_functions(t, {}, nullptr, warm);
  EXPECT_TRUE(covers_all(sol, t));
  EXPECT_LE(sol.size(), warm.size());
}

TEST(Algorithm1, InvalidWarmStartIsIgnored) {
  const DetectabilityTable t = tiny_table();
  const std::vector<ParityFunc> bogus{0b1000};  // covers only case 3
  ASSERT_FALSE(covers_all(bogus, t));
  const auto sol = minimize_parity_functions(t, {}, nullptr, bogus);
  EXPECT_TRUE(covers_all(sol, t));
}

TEST(Algorithm1, PaperFaithfulModeStillSolves) {
  // repair/post-optimize off: pure binary search + LP + rounding.
  const DetectabilityTable t = table_for("traffic", 2);
  Algorithm1Options opts;
  opts.repair = false;
  opts.post_optimize = false;
  const auto sol = minimize_parity_functions(t, opts);
  EXPECT_TRUE(covers_all(sol, t));
}

TEST(IlpFormulations, ReducedAndStatement5AgreeOnObjective) {
  const DetectabilityTable t = tiny_table();
  std::vector<std::uint32_t> rows{0, 1, 2};
  for (int q : {1, 2, 3}) {
    LpFormulation fr = build_lp(t, rows, q);
    LpFormulation f5 = build_lp_statement5(t, rows, q);
    const auto rr = lp::solve(fr.problem);
    const auto r5 = lp::solve(f5.problem);
    ASSERT_EQ(rr.status, lp::Status::kOptimal);
    ASSERT_EQ(r5.status, lp::Status::kOptimal);
    // Same relaxation: identical optimal objective (min sum of beta).
    EXPECT_NEAR(rr.objective, r5.objective, 1e-5) << "q=" << q;
  }
}

TEST(IlpFormulations, BetaValuesShapeAndRange) {
  const DetectabilityTable t = tiny_table();
  std::vector<std::uint32_t> rows{0, 1, 2};
  LpFormulation f = build_lp(t, rows, 2);
  const auto res = lp::solve(f.problem);
  ASSERT_EQ(res.status, lp::Status::kOptimal);
  const auto x = beta_values(f, res);
  ASSERT_EQ(x.size(), 2u);
  ASSERT_EQ(x[0].size(), 4u);
  for (const auto& tree : x) {
    for (double v : tree) {
      EXPECT_GE(v, -1e-9);
      EXPECT_LE(v, 1.0 + 1e-9);
    }
  }
}

TEST(IlpFormulations, IntegerFeasiblePointSatisfiesLp) {
  // Take a known integer cover and check it is feasible for the LP
  // relaxation (with suitable r): the LP optimum can only be <= its cost.
  const DetectabilityTable t = tiny_table();
  std::vector<std::uint32_t> rows{0, 1, 2};
  LpFormulation f = build_lp(t, rows, 2);
  const auto res = lp::solve(f.problem);
  ASSERT_EQ(res.status, lp::Status::kOptimal);
  // Integer solution {0b0001, 0b0010} has total beta mass 2.
  EXPECT_LE(res.objective, 2.0 + 1e-6);
}

}  // namespace
}  // namespace ced::core
