#include "fsm/minimize_states.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"

namespace ced::fsm {
namespace {

Fsm load_text(const char* text) { return Fsm::from_kiss(kiss::parse(text)); }

/// Behavioural equivalence on specified transitions: walks both machines
/// over every input sequence of the given depth from reset and compares
/// specified outputs.
void expect_equivalent(const Fsm& a, const Fsm& b, int depth) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  struct Frame {
    int sa, sb, d;
  };
  std::vector<Frame> stack{{a.reset_state(), b.reset_state(), 0}};
  const std::uint64_t inputs = std::uint64_t{1} << a.num_inputs();
  while (!stack.empty()) {
    const Frame fr = stack.back();
    stack.pop_back();
    if (fr.d == depth) continue;
    for (std::uint64_t in = 0; in < inputs; ++in) {
      const auto ta = a.behavior_for(fr.sa, in);
      const auto tb = b.behavior_for(fr.sb, in);
      if (!ta) continue;  // unspecified in the original: anything goes
      ASSERT_TRUE(tb.has_value())
          << "reduced machine dropped a specified transition";
      for (std::size_t o = 0; o < ta->output.size(); ++o) {
        if (ta->output[o] == '-') continue;
        EXPECT_EQ(ta->output[o], tb->output[o]);
      }
      stack.push_back(Frame{ta->next, tb->next, fr.d + 1});
    }
  }
}

TEST(MinimizeStates, MergesIdenticalStates) {
  // B and C are behaviourally identical.
  const char* dup = R"(.i 1
.o 1
0 A B 0
1 A C 0
0 B A 1
1 B B 0
0 C A 1
1 C C 0
.e
)";
  const Fsm f = load_text(dup);
  const StateMinimizeResult r = minimize_states(f);
  EXPECT_EQ(r.states_before, 3);
  EXPECT_EQ(r.states_after, 2);
  EXPECT_EQ(r.state_map[1], r.state_map[2]);
  expect_equivalent(f, r.machine, 6);
}

TEST(MinimizeStates, KeepsDistinguishableStates) {
  const Fsm f = load_text(benchdata::handwritten_kiss("seq_detect").c_str());
  const StateMinimizeResult r = minimize_states(f);
  EXPECT_EQ(r.states_after, r.states_before);  // detector is minimal
}

TEST(MinimizeStates, DeepDistinction) {
  // States differ only after two steps.
  const char* deep = R"(.i 1
.o 1
- A X 0
- B Y 0
- X GOOD 0
- Y BAD 0
- GOOD GOOD 1
- BAD BAD 0
.e
)";
  const Fsm f = load_text(deep);
  const StateMinimizeResult r = minimize_states(f);
  // A != B because X -> GOOD but Y -> BAD.
  EXPECT_NE(r.state_map[0], r.state_map[1]);
}

TEST(MinimizeStates, HandwrittenMachinesStayEquivalent) {
  for (const auto& e : benchdata::handwritten_fsms()) {
    const Fsm f = load_text(e.kiss.c_str());
    const StateMinimizeResult r = minimize_states(f);
    EXPECT_LE(r.states_after, r.states_before) << e.name;
    expect_equivalent(f, r.machine, 5);
  }
}

TEST(MergeCompatible, UsesDontCaresToMerge) {
  // B and C agree wherever both are specified; exact minimization cannot
  // merge them (different don't-care positions) but compatible merging can.
  const char* compat = R"(.i 1
.o 2
0 A B 00
1 A C 00
0 B A 1-
1 B B 00
0 C A 10
1 C C 0-
.e
)";
  const Fsm f = load_text(compat);
  const StateMinimizeResult exact = minimize_states(f);
  EXPECT_EQ(exact.states_after, 3);
  const StateMinimizeResult merged = merge_compatible_states(f);
  const int b_idx = f.state_index("B");
  const int c_idx = f.state_index("C");
  EXPECT_EQ(merged.state_map[static_cast<std::size_t>(b_idx)],
            merged.state_map[static_cast<std::size_t>(c_idx)]);
  EXPECT_EQ(merged.states_after, 2);
  expect_equivalent(f, merged.machine, 6);
}

TEST(MergeCompatible, RespectsIncompatibility) {
  const char* conflict = R"(.i 1
.o 1
0 A B 0
1 A C 0
0 B A 1
1 B B 0
0 C A 0
1 C C 0
.e
)";
  const Fsm f = load_text(conflict);
  const StateMinimizeResult r = merge_compatible_states(f);
  // B and C conflict on input 0 (outputs 1 vs 0).
  EXPECT_NE(r.state_map[1], r.state_map[2]);
  expect_equivalent(f, r.machine, 6);
}

TEST(MergeCompatible, ClosureBlocksUnsafeMerges) {
  // P and Q look compatible but force (GOOD, BAD) together, which conflict.
  const char* closure = R"(.i 1
.o 1
- P GOOD -
- Q BAD -
- GOOD GOOD 1
- BAD BAD 0
.e
)";
  const Fsm f = load_text(closure);
  const StateMinimizeResult r = merge_compatible_states(f);
  const int p_idx = f.state_index("P");
  const int q_idx = f.state_index("Q");
  EXPECT_NE(r.state_map[static_cast<std::size_t>(p_idx)],
            r.state_map[static_cast<std::size_t>(q_idx)]);
  expect_equivalent(f, r.machine, 6);
}

TEST(MergeCompatible, HandwrittenMachinesStayEquivalent) {
  for (const auto& e : benchdata::handwritten_fsms()) {
    const Fsm f = load_text(e.kiss.c_str());
    const StateMinimizeResult r = merge_compatible_states(f);
    EXPECT_LE(r.states_after, r.states_before) << e.name;
    expect_equivalent(f, r.machine, 5);
  }
}

TEST(MergeCompatible, ReducedMachineSynthesizes) {
  const Fsm f = load_text(benchdata::handwritten_kiss("link_rx").c_str());
  const StateMinimizeResult r = merge_compatible_states(f);
  const FsmCircuit c = synthesize_fsm(r.machine, EncodingKind::kBinary, {});
  EXPECT_GT(c.netlist.gate_count(), 0u);
}

}  // namespace
}  // namespace ced::fsm
