#include "core/latency.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "kiss/kiss.hpp"
#include "sim/faults.hpp"

namespace ced::core {
namespace {

fsm::FsmCircuit circuit_for_text(const char* kiss_text) {
  const fsm::Fsm f = fsm::Fsm::from_kiss(kiss::parse(kiss_text));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

fsm::FsmCircuit circuit_for(const std::string& name) {
  return circuit_for_text(benchdata::handwritten_kiss(name).c_str());
}

TEST(UsefulLatency, OneEntryPerFault) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  const LatencyAnalysis la = analyze_useful_latency(c, faults);
  EXPECT_EQ(la.shortest_loop_per_fault.size(), faults.size());
}

TEST(UsefulLatency, UndetectableFaultsReportZero) {
  // The second primary input never influences the machine, so its net has
  // no fanout: stuck-at faults on it produce no activation and must report
  // a zero loop length.
  const char* ignores_input = R"(.i 2
.o 1
0- A B 1
1- A A 0
0- B A 0
1- B B 1
.e
)";
  const fsm::FsmCircuit c = circuit_for_text(ignores_input);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  const LatencyAnalysis la = analyze_useful_latency(c, faults);
  const std::uint32_t in1_net = c.netlist.inputs()[1];
  bool saw_in1 = false;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i].net == in1_net) {
      saw_in1 = true;
      EXPECT_EQ(la.shortest_loop_per_fault[i], 0) << faults[i].to_string();
    }
  }
  EXPECT_TRUE(saw_in1);
}

TEST(UsefulLatency, BoundIsPositiveAndCapped) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  LatencyAnalysisOptions opts;
  opts.max_latency = 3;
  const LatencyAnalysis la = analyze_useful_latency(c, faults, opts);
  EXPECT_GE(la.max_useful_latency, 1);
  EXPECT_LE(la.max_useful_latency, 3);
  for (int l : la.shortest_loop_per_fault) {
    EXPECT_GE(l, 0);
    EXPECT_LE(l, 3);
  }
}

TEST(UsefulLatency, SmallMachineSaturatesWithinItsCodeSpace) {
  // A loop-free faulty walk cannot be longer than the number of state
  // codes, so traffic (2 state bits -> 4 codes) saturates by p = 4.
  const fsm::FsmCircuit c = circuit_for("traffic");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  LatencyAnalysisOptions opts;
  opts.max_latency = 8;
  const LatencyAnalysis la = analyze_useful_latency(c, faults, opts);
  EXPECT_LE(la.max_useful_latency, 4);
  EXPECT_GE(la.max_useful_latency, 1);
}

TEST(UsefulLatency, PureSelfLoopFaultSaturatesImmediately) {
  // One-state machine: every faulty walk revisits its state at once, so
  // the useful bound collapses to 1 for every activating fault.
  const char* loop = ".i 1\n.o 1\n0 A A 0\n1 A A 1\n.e\n";
  const fsm::FsmCircuit c = circuit_for_text(loop);
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  const LatencyAnalysis la = analyze_useful_latency(c, faults);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    // Activating faults corrupt the single state bit or the output; a
    // walk over at most 2 codes saturates at depth <= 2.
    EXPECT_LE(la.shortest_loop_per_fault[i], 2) << faults[i].to_string();
  }
}

TEST(UsefulLatency, UnrestrictedModeCoversMoreActivations) {
  const fsm::FsmCircuit c = circuit_for("seq_detect");
  const auto faults = sim::enumerate_stuck_at(c.netlist);
  LatencyAnalysisOptions reach;
  LatencyAnalysisOptions all = reach;
  all.restrict_to_reachable = false;
  const LatencyAnalysis lr = analyze_useful_latency(c, faults, reach);
  const LatencyAnalysis la = analyze_useful_latency(c, faults, all);
  // More activation roots can only keep or shrink per-fault shortest loops
  // being zero; detectable count can only grow.
  int detectable_r = 0, detectable_a = 0;
  for (int l : lr.shortest_loop_per_fault) detectable_r += l > 0;
  for (int l : la.shortest_loop_per_fault) detectable_a += l > 0;
  EXPECT_GE(detectable_a, detectable_r);
}

}  // namespace
}  // namespace ced::core
