#include "core/parity_synth.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/duplication.hpp"
#include "kiss/kiss.hpp"
#include "sim/fault_sim.hpp"

namespace ced::core {
namespace {

fsm::FsmCircuit circuit_for(const std::string& name) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
  return fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
}

TEST(CedSynth, CompactionComputesChosenParities) {
  const fsm::FsmCircuit c = circuit_for("vending");
  const std::vector<ParityFunc> parities{0b0101, 0b0011};
  const CedHardware hw = synthesize_ced(c, parities);
  EXPECT_EQ(hw.q, 2);
  EXPECT_EQ(hw.hold_registers, 4u);

  // Feed arbitrary observable words; compacted outputs must equal the
  // parity of the selected bits.
  for (std::uint64_t obs = 0; obs < 16; ++obs) {
    const std::uint64_t assignment = 0 | (0 << hw.r) | (obs << (hw.r + hw.s));
    const std::uint64_t outs = hw.checker.eval_single(assignment);
    for (int l = 0; l < hw.q; ++l) {
      EXPECT_EQ((outs >> l) & 1,
                static_cast<std::uint64_t>(
                    std::popcount(parities[static_cast<std::size_t>(l)] & obs) & 1));
    }
  }
}

TEST(CedSynth, PredictionMatchesGoldenParityOnReachable) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const std::vector<ParityFunc> parities{0b101, 0b011};
  const CedHardware hw = synthesize_ced(c, parities);
  for (std::uint64_t code :
       sim::reachable_codes(c, c.enc.reset_code)) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      const std::uint64_t golden = c.eval(a, code);
      const std::uint64_t assignment =
          a | (code << hw.r);  // observable inputs zero: irrelevant to pred
      const std::uint64_t outs = hw.checker.eval_single(assignment);
      for (int l = 0; l < hw.q; ++l) {
        EXPECT_EQ((outs >> (hw.q + l)) & 1,
                  static_cast<std::uint64_t>(
                      std::popcount(parities[static_cast<std::size_t>(l)] &
                                    golden) &
                      1))
            << "code " << code << " input " << a << " tree " << l;
      }
    }
  }
}

TEST(CedSynth, ErrorSignalExactlyFlagsParityMismatch) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const std::vector<ParityFunc> parities{0b11, 0b101};
  const CedHardware hw = synthesize_ced(c, parities);
  for (std::uint64_t code : sim::reachable_codes(c, c.enc.reset_code)) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      const std::uint64_t golden = c.eval(a, code);
      for (std::uint64_t obs = 0; obs < (std::uint64_t{1} << c.n()); ++obs) {
        bool mismatch = false;
        for (ParityFunc beta : parities) {
          if ((std::popcount(beta & obs) & 1) !=
              (std::popcount(beta & golden) & 1)) {
            mismatch = true;
          }
        }
        EXPECT_EQ(hw.error_asserted(a, code, obs), mismatch);
      }
    }
  }
}

TEST(CedSynth, NoParitiesMeansNoChecking) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const CedHardware hw = synthesize_ced(c, {});
  EXPECT_EQ(hw.q, 0);
  EXPECT_FALSE(hw.error_asserted(0, 0, 0b10101));
  EXPECT_EQ(hw.hold_registers, 0u);
}

TEST(CedSynth, CostIncludesHoldRegisters) {
  const fsm::FsmCircuit c = circuit_for("vending");
  const std::vector<ParityFunc> parities{0b0101};
  const CedHardware hw = synthesize_ced(c, parities);
  const auto& lib = logic::CellLibrary::mcnc();
  const auto with = hw.cost(lib);
  const auto without = logic::measure_area(hw.checker, lib, 0);
  EXPECT_DOUBLE_EQ(with.area, without.area + 2 * lib.dff);
}

TEST(CedSynth, DcUnreachableNeverHurtsReachablePrediction) {
  // Synthesizing with and without the unreachable-DC optimization must
  // agree on reachable states.
  const fsm::FsmCircuit c = circuit_for("modulo5");
  const std::vector<ParityFunc> parities{0b1011};
  CedSynthOptions with_dc, without_dc;
  without_dc.dc_unreachable = false;
  const CedHardware hw1 = synthesize_ced(c, parities, with_dc);
  const CedHardware hw2 = synthesize_ced(c, parities, without_dc);
  for (std::uint64_t code : sim::reachable_codes(c, c.enc.reset_code)) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      const std::uint64_t obs = c.eval(a, code);
      EXPECT_EQ(hw1.error_asserted(a, code, obs),
                hw2.error_asserted(a, code, obs));
      EXPECT_FALSE(hw1.error_asserted(a, code, obs));
    }
  }
}

TEST(CedSynth, TwoRailCheckerMatchesPlainErrorSignal) {
  const fsm::FsmCircuit c = circuit_for("vending");
  const std::vector<ParityFunc> parities{0b0101, 0b0011, 0b1001};
  CedSynthOptions plain, tr;
  tr.two_rail = true;
  const CedHardware hw_plain = synthesize_ced(c, parities, plain);
  const CedHardware hw_tr = synthesize_ced(c, parities, tr);
  EXPECT_TRUE(hw_tr.two_rail);
  for (std::uint64_t code : sim::reachable_codes(c, c.enc.reset_code)) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      for (std::uint64_t obs = 0; obs < (std::uint64_t{1} << c.n());
           obs += 3) {
        EXPECT_EQ(hw_tr.error_asserted(a, code, obs),
                  hw_plain.error_asserted(a, code, obs))
            << code << " " << a << " " << obs;
      }
    }
  }
}

TEST(CedSynth, TwoRailRailsAreComplementaryFaultFree) {
  const fsm::FsmCircuit c = circuit_for("traffic");
  const std::vector<ParityFunc> parities{0b11, 0b101};
  CedSynthOptions tr;
  tr.two_rail = true;
  const CedHardware hw = synthesize_ced(c, parities, tr);
  const int q = hw.q;
  for (std::uint64_t code : sim::reachable_codes(c, c.enc.reset_code)) {
    for (std::uint64_t a = 0; a < (std::uint64_t{1} << c.r()); ++a) {
      const std::uint64_t obs = c.eval(a, code);
      const std::uint64_t assignment =
          a | (code << hw.r) | (obs << (hw.r + hw.s));
      const std::uint64_t outs = hw.checker.eval_single(assignment);
      const bool rail0 = (outs >> (2 * q)) & 1;
      const bool rail1 = (outs >> (2 * q + 1)) & 1;
      EXPECT_NE(rail0, rail1);  // complementary = code output
      EXPECT_FALSE(hw.error_asserted(a, code, obs));
    }
  }
}

TEST(CedSynth, TwoRailCostsMoreThanPlain) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const std::vector<ParityFunc> parities{0b101, 0b011, 0b110};
  CedSynthOptions plain, tr;
  tr.two_rail = true;
  const auto& lib = logic::CellLibrary::mcnc();
  const double a_plain = synthesize_ced(c, parities, plain).cost(lib).area;
  const double a_tr = synthesize_ced(c, parities, tr).cost(lib).area;
  EXPECT_GT(a_tr, a_plain);
}

TEST(Duplication, CostsScaleWithCircuit) {
  const fsm::FsmCircuit small = circuit_for("seq_detect");
  const fsm::FsmCircuit big = circuit_for("arbiter");
  const auto& lib = logic::CellLibrary::mcnc();
  const auto rs = duplication_baseline(small, lib);
  const auto rb = duplication_baseline(big, lib);
  EXPECT_EQ(rs.functions, static_cast<std::size_t>(small.n()));
  EXPECT_EQ(rb.functions, static_cast<std::size_t>(big.n()));
  EXPECT_GT(rb.area, rs.area);
  EXPECT_GT(rs.gates, 0u);
}

TEST(Duplication, CostsAtLeastOriginalLogic) {
  const fsm::FsmCircuit c = circuit_for("link_rx");
  const auto& lib = logic::CellLibrary::mcnc();
  const auto dup = duplication_baseline(c, lib);
  const auto orig = logic::measure_area(c.netlist, lib, 0);
  EXPECT_GE(dup.area, orig.area);  // copy + comparator + shadow register
}

}  // namespace
}  // namespace ced::core
