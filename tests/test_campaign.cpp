// Differential oracle and determinism harness for the fault-injection
// campaign engine (sim/campaign.hpp).
//
// The central test re-derives campaign verdicts through a second,
// independent implementation path: the campaign drives the synthesized
// checker *netlist* through ProtectedMachine/FaultSession, while the oracle
// here replays the same seeded walks with nothing but direct functional-
// netlist evaluation and GF(2) parity arithmetic. With dc_unreachable=false
// the prediction logic is fully specified from the golden netlist at every
// state code, so the two must agree transition-for-transition:
//
//   checker fires on (input a, state c, observed response w)
//     <=>  exists parity beta with odd popcount(beta & (w ^ golden(a, c)))
//
// Any divergence — in the checker synthesis, the batched evaluation, the
// walk RNG contract, episode bookkeeping, or shard merging — breaks the
// verdict-by-verdict comparison.
//
// The rest pins the determinism contracts the storage layer depends on:
// byte-identical encoded reports across thread counts and checkpoint
// resumes, the canonical enumerate_stuck_at order, and canonical codec
// round-trips for the campaign artifact kinds.

#include "sim/campaign.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchdata/generator.hpp"
#include "benchdata/suite.hpp"
#include "core/extract.hpp"
#include "core/parity.hpp"
#include "core/parity_synth.hpp"
#include "core/run.hpp"
#include "core/rng.hpp"
#include "sim/fault_sim.hpp"
#include "sim/faults.hpp"
#include "storage/format.hpp"
#include "storage/store.hpp"

namespace ced::sim {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Shared fixtures: a solved design with a fully-specified checker.

struct Design {
  fsm::FsmCircuit circuit;
  std::vector<StuckAtFault> faults;
  std::vector<core::ParityFunc> parities;
  core::CedHardware hw;
};

/// Solves `machine` at bound `p` and synthesizes the checker with
/// dc_unreachable=false, making the predictor's behaviour defined (equal to
/// the golden parity) at every state code — the precondition for the exact
/// parity-math oracle below.
Design build_design(const fsm::Fsm& machine, int p) {
  const Result<RunConfig> cfg = RunConfig::Builder().latency(p).build();
  EXPECT_TRUE(cfg.has_value());
  const core::PipelineOptions& opts = cfg->options();
  const core::PipelineReport rep = ced::run_pipeline(machine, *cfg);
  Design d{fsm::synthesize_fsm(machine, opts.encoding, opts.synth), {}, {}, {}};
  d.faults = enumerate_stuck_at(d.circuit.netlist, opts.faults);
  d.parities = rep.parities;
  core::CedSynthOptions copts = opts.ced;
  copts.dc_unreachable = false;
  d.hw = core::synthesize_ced(d.circuit, d.parities, copts);
  return d;
}

Design suite_design(const std::string& name, int p) {
  return build_design(benchdata::suite_fsm(name), p);
}

// ---------------------------------------------------------------------------
// The independent oracle.

/// Checker semantics re-derived from first principles (no checker netlist):
/// the compaction trees see the actual observable word `obs`, the predictor
/// (fully specified) computes the golden parity at the same (input, state),
/// and the comparator ORs the per-tree mismatches.
bool oracle_error(const Design& d, std::uint64_t input, std::uint64_t state,
                  std::uint64_t obs) {
  const std::uint64_t diff = obs ^ d.circuit.eval(input, state);
  for (const core::ParityFunc beta : d.parities) {
    if (std::popcount(beta & diff) & 1) return true;
  }
  return false;
}

void oracle_classify(FaultVerdict& v, int first, int bound, int horizon) {
  ++v.activations;
  if (first > horizon) {
    ++v.silent_escape;
  } else if (first <= bound) {
    ++v.detected_in_bound;
    ++v.histogram[static_cast<std::size_t>(first - 1)];
    v.max_latency = std::max(v.max_latency, first);
  } else {
    ++v.detected_late;
    ++v.histogram[static_cast<std::size_t>(first - 1)];
    v.max_latency = std::max(v.max_latency, first);
  }
}

/// Replays the documented walk contract — walk w from activation-state
/// index si of unit u draws inputs from Rng(seed).stream(u).stream(
/// si * walks + w) — against direct netlist evaluation, classifying
/// episodes with the documented taxonomy. Deliberately shares no code with
/// judge_stuck_walks.
FaultVerdict oracle_stuck_walks(const Design& d, const StuckAtFault& fault,
                                std::uint64_t unit_index,
                                const CampaignOptions& opts) {
  const int horizon = resolved_horizon(opts);
  FaultVerdict v;
  v.unit = (std::uint64_t{fault.net} << 1) | (fault.stuck_value ? 1 : 0);
  v.histogram.assign(static_cast<std::size_t>(horizon), 0);
  const logic::Injection inj = fault.injection();
  const auto reach =
      reachable_codes(d.circuit, d.circuit.enc.reset_code);
  const std::uint64_t input_mask =
      (std::uint64_t{1} << d.circuit.r()) - 1;
  const core::Rng unit_rng = core::Rng(opts.seed).stream(unit_index);

  for (std::size_t si = 0; si < reach.size(); ++si) {
    for (int w = 0; w < opts.walks; ++w) {
      core::Rng rng = unit_rng.stream(
          static_cast<std::uint64_t>(si) *
              static_cast<std::uint64_t>(opts.walks) +
          static_cast<std::uint64_t>(w));
      std::uint64_t state = reach[si];
      int pending = -1;
      for (int t = 0; t < opts.walk_length || pending >= 0; ++t) {
        const std::uint64_t a = rng.next() & input_mask;
        const bool active = pending < 0 || opts.persistence <= 0 ||
                            (t - pending) < opts.persistence;
        const std::uint64_t obs =
            d.circuit.eval(a, state, active ? &inj : nullptr);
        if (pending < 0 && active && obs != d.circuit.eval(a, state)) {
          pending = t;
        }
        if (oracle_error(d, a, state, obs)) {
          if (pending >= 0) {
            oracle_classify(v, t - pending + 1, opts.latency_bound, horizon);
            pending = -1;
          }
          state = d.circuit.enc.reset_code;
          continue;
        }
        if (pending >= 0 && t - pending + 1 >= horizon) {
          ++v.activations;
          ++v.silent_escape;
          pending = -1;
          state = d.circuit.enc.reset_code;
          continue;
        }
        state = d.circuit.next_state_of(obs);
      }
    }
  }
  return v;
}

/// Small randomized machines for the differential sweep. Shapes chosen to
/// exercise distinct structure: dense branching, heavy self-loops, an
/// interface wide enough for multi-word input masking.
std::vector<benchdata::SyntheticSpec> oracle_specs() {
  std::vector<benchdata::SyntheticSpec> specs;
  for (std::uint64_t seed : {3u, 17u, 58u}) {
    benchdata::SyntheticSpec s;
    s.name = "oracle" + std::to_string(seed);
    s.inputs = 2;
    s.states = 6;
    s.outputs = 2;
    s.branches = 3;
    s.seed = seed;
    specs.push_back(s);
  }
  benchdata::SyntheticSpec wide;
  wide.name = "oracle-wide";
  wide.inputs = 3;
  wide.states = 9;
  wide.outputs = 3;
  wide.branches = 5;
  wide.self_loop_bias = 0.45;
  wide.seed = 99;
  specs.push_back(wide);
  return specs;
}

// ---------------------------------------------------------------------------
// Satellite 1: table <-> simulation differential oracle.

TEST(CampaignOracle, WalkVerdictsMatchParityMathOnRandomMachines) {
  for (const auto& spec : oracle_specs()) {
    for (const int persistence : {0, 1}) {
      const Design d = build_design(benchdata::generate_fsm(spec), 2);
      CampaignOptions opts;
      opts.model = FaultModel::kStuckAt;
      opts.policy = CampaignPolicy::kRandomWalks;
      opts.latency_bound = 2;
      opts.persistence = persistence;
      opts.walks = 2;
      opts.walk_length = 40;
      opts.seed = 0xfeed0000 + spec.seed;
      const CampaignReport rep =
          run_campaign(d.circuit, d.hw, d.faults, opts);
      ASSERT_EQ(rep.verdicts.size(), d.faults.size());
      ASSERT_FALSE(rep.truncated);
      for (std::size_t i = 0; i < d.faults.size(); ++i) {
        const FaultVerdict expect =
            oracle_stuck_walks(d, d.faults[i], i, opts);
        EXPECT_EQ(rep.verdicts[i], expect)
            << spec.name << " persistence=" << persistence << " fault "
            << d.faults[i].to_string();
      }
    }
  }
}

TEST(CampaignOracle, TableCoverageImpliesExhaustiveBoundHolds) {
  for (const auto& spec : oracle_specs()) {
    const int p = 2;
    const Design d = build_design(benchdata::generate_fsm(spec), p);

    core::ExtractOptions eopts;
    eopts.latency = p;
    const core::DetectabilityTable table =
        core::extract_cases(d.circuit, d.faults, eopts);
    ASSERT_TRUE(core::covers_all(d.parities, table)) << spec.name;

    CampaignOptions opts;
    opts.latency_bound = p;
    opts.horizon = p;  // any slower episode becomes an escape
    const CampaignReport rep =
        run_campaign(d.circuit, d.hw, d.faults, opts);
    EXPECT_TRUE(rep.hard_guarantee());
    EXPECT_TRUE(rep.bound_holds()) << spec.name;
    EXPECT_LE(rep.max_latency, p) << spec.name;

    // Latency-1 refinement: when the scheme already covers every one-step
    // case, no exhaustive episode may need the second cycle.
    core::ExtractOptions e1;
    e1.latency = 1;
    const auto t1 = core::extract_cases(d.circuit, d.faults, e1);
    if (core::uncovered_cases(d.parities, t1).empty()) {
      EXPECT_LE(rep.max_latency, 1) << spec.name;
    }
  }
}

TEST(CampaignOracle, WeakenedSchemeIsFalsifiedByCampaign) {
  const int p = 2;
  const Design d = suite_design("dk16", p);
  ASSERT_GE(d.parities.size(), 2u);

  core::ExtractOptions eopts;
  eopts.latency = p;
  const core::DetectabilityTable table =
      core::extract_cases(d.circuit, d.faults, eopts);
  ASSERT_FALSE(table.strengthened);

  // Drop one parity tree whose removal the table says breaks coverage.
  std::vector<core::ParityFunc> weak;
  for (std::size_t drop = 0; drop < d.parities.size(); ++drop) {
    std::vector<core::ParityFunc> candidate;
    for (std::size_t l = 0; l < d.parities.size(); ++l) {
      if (l != drop) candidate.push_back(d.parities[l]);
    }
    if (!core::uncovered_cases(candidate, table).empty()) {
      weak = candidate;
      break;
    }
  }
  ASSERT_FALSE(weak.empty()) << "every single parity was redundant";

  core::CedSynthOptions copts;
  copts.dc_unreachable = false;
  const core::CedHardware weak_hw =
      core::synthesize_ced(d.circuit, weak, copts);

  CampaignOptions opts;
  opts.latency_bound = p;
  opts.horizon = p + 2;
  const CampaignReport rep =
      run_campaign(d.circuit, weak_hw, d.faults, opts);
  EXPECT_TRUE(rep.hard_guarantee());
  EXPECT_FALSE(rep.bound_holds());
  EXPECT_GT(rep.detected_late + rep.silent_escape, 0u);
}

// ---------------------------------------------------------------------------
// Verdict accounting invariants and diagnostic (flip) models.

void expect_consistent(const CampaignReport& rep) {
  EXPECT_EQ(rep.activations,
            rep.detected_in_bound + rep.detected_late + rep.silent_escape);
  std::uint64_t hist_sum = 0;
  for (const std::uint64_t h : rep.histogram) hist_sum += h;
  EXPECT_EQ(hist_sum, rep.detected_in_bound + rep.detected_late);
  EXPECT_EQ(rep.num_units, rep.verdicts.size());

  std::uint64_t acts = 0, in_bound = 0, late = 0, silent = 0, benign = 0;
  int max_latency = 0;
  for (const FaultVerdict& v : rep.verdicts) {
    acts += v.activations;
    in_bound += v.detected_in_bound;
    late += v.detected_late;
    silent += v.silent_escape;
    if (v.benign()) ++benign;
    max_latency = std::max(max_latency, v.max_latency);
  }
  EXPECT_EQ(acts, rep.activations);
  EXPECT_EQ(in_bound, rep.detected_in_bound);
  EXPECT_EQ(late, rep.detected_late);
  EXPECT_EQ(silent, rep.silent_escape);
  EXPECT_EQ(benign, rep.benign_units);
  EXPECT_EQ(max_latency, rep.max_latency);
}

TEST(CampaignFlips, TransientModelMeasuresWithoutAsserting) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.model = FaultModel::kTransientFlip;
  opts.policy = CampaignPolicy::kRandomWalks;
  opts.latency_bound = 2;
  opts.walks = 3;
  opts.walk_length = 48;
  const CampaignReport rep = run_campaign(d.circuit, d.hw, {}, opts);
  EXPECT_FALSE(rep.hard_guarantee());
  EXPECT_EQ(rep.num_units, static_cast<std::uint64_t>(d.circuit.s()));
  expect_consistent(rep);

  // Deterministic: an identical rerun produces identical bytes.
  const CampaignReport again = run_campaign(d.circuit, d.hw, {}, opts);
  EXPECT_EQ(storage::encode_campaign_report(rep),
            storage::encode_campaign_report(again));
}

TEST(CampaignFlips, AdversarialUnitCountIsAllMasksUpToK) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.model = FaultModel::kAdversarialFlip;
  opts.policy = CampaignPolicy::kRandomWalks;
  opts.latency_bound = 2;
  opts.flip_bits = 2;
  opts.walks = 1;
  opts.walk_length = 24;
  const int s = d.circuit.s();
  std::uint64_t expect_units = 0;
  for (std::uint64_t m = 1; m < (std::uint64_t{1} << s); ++m) {
    if (std::popcount(m) <= 2) ++expect_units;
  }
  const auto units = campaign_units(d.circuit, {}, opts);
  EXPECT_EQ(units.size(), expect_units);
  const CampaignReport rep = run_campaign(d.circuit, d.hw, {}, opts);
  EXPECT_EQ(rep.num_units, expect_units);
  expect_consistent(rep);
}

// ---------------------------------------------------------------------------
// Determinism: thread counts and checkpoint resumes are invisible in the
// encoded report.

TEST(CampaignDeterminism, ByteIdenticalAcrossThreadCounts) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.policy = CampaignPolicy::kRandomWalks;
  opts.latency_bound = 2;
  opts.walks = 2;
  opts.walk_length = 32;
  opts.threads = 1;
  const CampaignReport serial =
      run_campaign(d.circuit, d.hw, d.faults, opts);
  opts.threads = 4;
  const CampaignReport parallel =
      run_campaign(d.circuit, d.hw, d.faults, opts);
  EXPECT_EQ(storage::encode_campaign_report(serial),
            storage::encode_campaign_report(parallel));
}

class CampaignStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char buf[] = "/tmp/ced_campaign_test_XXXXXX";
    ASSERT_NE(::mkdtemp(buf), nullptr);
    dir_ = buf;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(CampaignStoreTest, CheckpointResumeIsByteIdentical) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.latency_bound = 2;
  CampaignShardingOptions sharding;
  sharding.num_shards = 5;

  // Reference: one uncheckpointed run.
  const std::string reference = storage::encode_campaign_report(
      run_campaign(d.circuit, d.hw, d.faults, opts, sharding));

  const std::string key =
      campaign_digest(d.circuit, d.hw, d.faults, opts, sharding.num_shards);
  storage::ArtifactStore store(dir_);
  const CampaignCheckpointHooks hooks =
      storage::make_campaign_hooks(store, key);

  // Interrupted run: the deterministic valve stops after two shards.
  CampaignShardingOptions partial = sharding;
  partial.max_new_shards = 2;
  const CampaignReport truncated =
      run_campaign(d.circuit, d.hw, d.faults, opts, partial, hooks);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_FALSE(truncated.truncation_reason.empty());
  EXPECT_LT(truncated.verdicts.size(), d.faults.size());
  int shards_on_disk = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    if (fs::exists(dir_ / (storage::campaign_shard_name(key, i) + ".ced"))) {
      ++shards_on_disk;
    }
  }
  EXPECT_EQ(shards_on_disk, 2);

  // Resume: loads the two checkpoints, computes the rest, and the merged
  // report is byte-identical to the never-interrupted run.
  const CampaignReport resumed =
      run_campaign(d.circuit, d.hw, d.faults, opts, sharding, hooks);
  EXPECT_FALSE(resumed.truncated);
  EXPECT_EQ(storage::encode_campaign_report(resumed), reference);

  // A fully-cached rerun is also identical.
  const CampaignReport cached =
      run_campaign(d.circuit, d.hw, d.faults, opts, sharding, hooks);
  EXPECT_EQ(storage::encode_campaign_report(cached), reference);
}

TEST_F(CampaignStoreTest, CorruptShardIsQuarantinedAndRecomputed) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.latency_bound = 2;
  CampaignShardingOptions sharding;
  sharding.num_shards = 3;
  const std::string key =
      campaign_digest(d.circuit, d.hw, d.faults, opts, sharding.num_shards);
  storage::ArtifactStore store(dir_);
  const CampaignCheckpointHooks hooks =
      storage::make_campaign_hooks(store, key);

  const std::string reference = storage::encode_campaign_report(
      run_campaign(d.circuit, d.hw, d.faults, opts, sharding, hooks));

  // Flip bytes in the middle of shard 1's file: the load hook must treat
  // it as a miss (quarantining it), never decode it into wrong verdicts.
  const fs::path shard_path =
      dir_ / (storage::campaign_shard_name(key, 1) + ".ced");
  ASSERT_TRUE(fs::exists(shard_path));
  {
    std::fstream f(shard_path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(shard_path) / 2));
    f.put('\xa5');
  }
  const CampaignReport recovered =
      run_campaign(d.circuit, d.hw, d.faults, opts, sharding, hooks);
  EXPECT_EQ(storage::encode_campaign_report(recovered), reference);
  EXPECT_FALSE(fs::exists(shard_path) &&
               fs::file_size(shard_path) < 8);  // rewritten, not truncated
}

TEST_F(CampaignStoreTest, ReportRoundTripsThroughStore) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.latency_bound = 2;
  const CampaignReport rep = run_campaign(d.circuit, d.hw, d.faults, opts);
  storage::ArtifactStore store(dir_);
  const std::string name = storage::campaign_report_name("deadbeef");
  ASSERT_TRUE(storage::store_campaign_report(store, name, rep).ok());
  const auto loaded = storage::load_campaign_report(store, name);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(storage::encode_campaign_report(*loaded),
            storage::encode_campaign_report(rep));
}

// ---------------------------------------------------------------------------
// The campaign key: result-shaping options move it, valves do not.

TEST(CampaignDigest, TracksResultShapingOptionsOnly) {
  const Design d = suite_design("dk16", 2);
  CampaignOptions opts;
  opts.latency_bound = 2;
  const std::string base =
      campaign_digest(d.circuit, d.hw, d.faults, opts, 4);
  EXPECT_EQ(base.size(), 32u);

  CampaignOptions valves = opts;
  valves.threads = 7;
  valves.deadline = core::Deadline::after(1e6);
  EXPECT_EQ(campaign_digest(d.circuit, d.hw, d.faults, valves, 4), base);

  CampaignOptions seed = opts;
  seed.seed ^= 1;
  EXPECT_NE(campaign_digest(d.circuit, d.hw, d.faults, seed, 4), base);
  CampaignOptions pol = opts;
  pol.policy = CampaignPolicy::kRandomWalks;
  EXPECT_NE(campaign_digest(d.circuit, d.hw, d.faults, pol, 4), base);
  EXPECT_NE(campaign_digest(d.circuit, d.hw, d.faults, opts, 5), base);
}

// ---------------------------------------------------------------------------
// Satellite 3: the canonical enumerate_stuck_at order is a pinned contract.

TEST(FaultEnumeration, CanonicalOrderIsPinned) {
  logic::Netlist nl;
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto c = nl.add_input("c");
  const auto ab = nl.add_gate(logic::GateType::kAnd, {a, b});
  const auto buf = nl.add_gate(logic::GateType::kBuf, {ab});
  const auto out = nl.add_gate(logic::GateType::kOr, {buf, c});
  nl.mark_output(out, "y");

  // Uncollapsed: every net, SA0 before SA1, ascending net id.
  const auto full = enumerate_stuck_at(nl, {/*collapse=*/false});
  std::vector<StuckAtFault> expect_full;
  for (std::uint32_t net = 0; net <= out; ++net) {
    expect_full.push_back({net, false});
    expect_full.push_back({net, true});
  }
  EXPECT_EQ(full, expect_full);

  // Collapsed: the exact representative set this netlist produces today.
  // This is a regression pin — collapse *decisions* may evolve, but any
  // change here invalidates content-addressed extraction/campaign keys and
  // must be a deliberate, versioned event.
  const auto collapsed = enumerate_stuck_at(nl, {/*collapse=*/true});
  const std::vector<StuckAtFault> expect_collapsed = {
      {a, true}, {b, true}, {c, false}, {buf, false},
      {out, false}, {out, true},
  };
  EXPECT_EQ(collapsed, expect_collapsed);
}

TEST(FaultEnumeration, OrderIsCanonicalOnRealCircuits) {
  for (const char* name : {"dk16", "s386"}) {
    const fsm::FsmCircuit circuit =
        fsm::synthesize_fsm(benchdata::suite_fsm(name),
                            fsm::EncodingKind::kBinary, {});
    const auto faults = enumerate_stuck_at(circuit.netlist);
    ASSERT_FALSE(faults.empty());
    for (std::size_t i = 1; i < faults.size(); ++i) {
      const auto& prev = faults[i - 1];
      const auto& cur = faults[i];
      EXPECT_TRUE(prev.net < cur.net ||
                  (prev.net == cur.net &&
                   prev.stuck_value < cur.stuck_value))
          << name << " position " << i;
    }
    EXPECT_EQ(faults, enumerate_stuck_at(circuit.netlist));
  }
}

// ---------------------------------------------------------------------------
// Canonical codecs: encode(decode(bytes)) == bytes.

TEST(CampaignCodec, ShardAndReportRoundTripByteIdentical) {
  CampaignShard shard;
  shard.index = 2;
  shard.num_shards = 7;
  for (std::uint64_t u = 0; u < 3; ++u) {
    FaultVerdict v;
    v.unit = u * 11 + 1;
    v.activations = 5 + u;
    v.detected_in_bound = 3;
    v.detected_late = 1;
    v.silent_escape = 1 + u;
    v.max_latency = 3;
    v.histogram = {2, 1, 1};
    shard.verdicts.push_back(v);
  }
  const std::string bytes = storage::encode_campaign_shard(shard);
  const auto decoded = storage::decode_campaign_shard(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, shard.index);
  EXPECT_EQ(decoded->num_shards, shard.num_shards);
  EXPECT_EQ(decoded->verdicts, shard.verdicts);
  EXPECT_EQ(storage::encode_campaign_shard(*decoded), bytes);

  CampaignReport rep;
  rep.model = FaultModel::kAdversarialFlip;
  rep.policy = CampaignPolicy::kRandomWalks;
  rep.latency_bound = 2;
  rep.horizon = 4;
  rep.flip_bits = 2;
  rep.walks = 8;
  rep.walk_length = 96;
  rep.seed = 0x123456789abcdef0ull;
  rep.num_units = 3;
  rep.activations = 18;
  rep.detected_in_bound = 11;
  rep.detected_late = 2;
  rep.silent_escape = 5;
  rep.benign_units = 0;
  rep.max_latency = 3;
  rep.histogram = {9, 2, 2, 0};
  rep.truncated = true;
  rep.truncation_reason = "deadline";
  rep.verdicts = shard.verdicts;
  const std::string rbytes = storage::encode_campaign_report(rep);
  const auto rdecoded = storage::decode_campaign_report(rbytes);
  ASSERT_TRUE(rdecoded.has_value());
  EXPECT_EQ(storage::encode_campaign_report(*rdecoded), rbytes);
  EXPECT_EQ(rdecoded->verdicts, rep.verdicts);
  EXPECT_EQ(rdecoded->truncation_reason, rep.truncation_reason);
  EXPECT_TRUE(rdecoded->hard_guarantee() == rep.hard_guarantee());
}

// ---------------------------------------------------------------------------
// Option validation.

TEST(CampaignOptionsValidation, MalformedOptionsThrow) {
  const Design d = suite_design("dk16", 2);
  {
    CampaignOptions opts;  // exhaustive policy...
    opts.model = FaultModel::kTransientFlip;  // ...cannot judge flips
    EXPECT_THROW(run_campaign(d.circuit, d.hw, {}, opts),
                 std::invalid_argument);
  }
  {
    CampaignOptions opts;
    opts.latency_bound = 2;
    opts.horizon = 1;  // below the bound
    EXPECT_THROW(run_campaign(d.circuit, d.hw, d.faults, opts),
                 std::invalid_argument);
  }
  {
    CampaignOptions opts;
    opts.latency_bound = 0;  // outside 1..kMaxLatency
    EXPECT_THROW(run_campaign(d.circuit, d.hw, d.faults, opts),
                 std::invalid_argument);
  }
  {
    CampaignOptions opts;
    opts.policy = CampaignPolicy::kRandomWalks;
    opts.walks = 0;
    EXPECT_THROW(run_campaign(d.circuit, d.hw, d.faults, opts),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace ced::sim
