#include "logic/netlist.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "logic/area.hpp"
#include "logic/minimize.hpp"
#include "logic/synth.hpp"
#include "logic/truth_table.hpp"

namespace ced::logic {
namespace {

TEST(Netlist, BasicGateEval) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g_and = n.add_gate(GateType::kAnd, {a, b});
  const auto g_or = n.add_gate(GateType::kOr, {a, b});
  const auto g_xor = n.add_gate(GateType::kXor, {a, b});
  const auto g_not = n.add_gate(GateType::kNot, {a});
  n.mark_output(g_and, "and");
  n.mark_output(g_or, "or");
  n.mark_output(g_xor, "xor");
  n.mark_output(g_not, "not");

  for (std::uint64_t v = 0; v < 4; ++v) {
    const std::uint64_t out = n.eval_single(v);
    const bool av = v & 1, bv = v & 2;
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(av && bv));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(av || bv));
    EXPECT_EQ((out >> 2) & 1, static_cast<std::uint64_t>(av != bv));
    EXPECT_EQ((out >> 3) & 1, static_cast<std::uint64_t>(!av));
  }
}

TEST(Netlist, NandNorXnorConst) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.mark_output(n.add_gate(GateType::kNand, {a, b}), "nand");
  n.mark_output(n.add_gate(GateType::kNor, {a, b}), "nor");
  n.mark_output(n.add_gate(GateType::kXnor, {a, b}), "xnor");
  n.mark_output(n.add_const(true), "one");
  n.mark_output(n.add_const(false), "zero");
  for (std::uint64_t v = 0; v < 4; ++v) {
    const std::uint64_t out = n.eval_single(v);
    const bool av = v & 1, bv = v & 2;
    EXPECT_EQ((out >> 0) & 1, static_cast<std::uint64_t>(!(av && bv)));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(!(av || bv)));
    EXPECT_EQ((out >> 2) & 1, static_cast<std::uint64_t>(av == bv));
    EXPECT_EQ((out >> 3) & 1, 1u);
    EXPECT_EQ((out >> 4) & 1, 0u);
  }
}

TEST(Netlist, TopologicalOrderEnforced) {
  Netlist n;
  const auto a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateType::kAnd, {a, 99}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kNot, {a, a}), std::invalid_argument);
  EXPECT_THROW(n.add_gate(GateType::kAnd, {}), std::invalid_argument);
}

TEST(Netlist, InjectionForcesNet) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  const auto g = n.add_gate(GateType::kAnd, {a, b});
  n.mark_output(g, "f");
  const Injection sa1{g, ~std::uint64_t{0}};
  const Injection sa0{g, 0};
  EXPECT_EQ(n.eval_single(0b00, &sa1), 1u);
  EXPECT_EQ(n.eval_single(0b11, &sa0), 0u);
  // Injection on an input net propagates through fanout.
  const Injection a1{a, ~std::uint64_t{0}};
  EXPECT_EQ(n.eval_single(0b10, &a1), 1u);
}

TEST(Netlist, ParallelPatternsMatchSingle) {
  // Random netlist evaluated 64 patterns at a time must agree with
  // pattern-at-a-time evaluation.
  ced::core::Rng rng(42);
  Netlist n;
  std::vector<std::uint32_t> nets;
  for (int i = 0; i < 6; ++i) nets.push_back(n.add_input("i"));
  for (int g = 0; g < 40; ++g) {
    const GateType t = static_cast<GateType>(
        3 + rng.next() % 8);  // kBuf..kXnor
    const int fanin = (t == GateType::kBuf || t == GateType::kNot)
                          ? 1
                          : 2 + static_cast<int>(rng.next() % 3);
    std::vector<std::uint32_t> fi;
    for (int k = 0; k < fanin; ++k) {
      fi.push_back(nets[rng.next() % nets.size()]);
    }
    nets.push_back(n.add_gate(t, fi));
  }
  n.mark_output(nets.back(), "f");
  n.mark_output(nets[nets.size() / 2], "g");

  std::vector<std::uint64_t> words(6), values;
  for (int i = 0; i < 6; ++i) {
    // Bit t of word i = bit i of pattern index t.
    std::uint64_t w = 0;
    for (int t = 0; t < 64; ++t) {
      w |= ((static_cast<std::uint64_t>(t) >> i) & 1) << t;
    }
    words[static_cast<std::size_t>(i)] = w;
  }
  n.eval(words, values);
  for (std::uint64_t t = 0; t < 64; ++t) {
    const std::uint64_t single = n.eval_single(t);
    EXPECT_EQ((values[n.outputs()[0]] >> t) & 1, single & 1) << t;
    EXPECT_EQ((values[n.outputs()[1]] >> t) & 1, (single >> 1) & 1) << t;
  }
}

TEST(Synth, SopMatchesCoverSemantics) {
  // Synthesize a random minimized function and check netlist == spec.
  ced::core::Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    const int vars = 3 + static_cast<int>(rng.next() % 4);
    SopSpec s(vars);
    for (std::size_t m = 0; m < s.on.size(); ++m) {
      if (rng.uniform() < 0.4) s.on.set(m);
    }
    const Cover cover = minimize_espresso(s);

    Netlist n;
    std::vector<std::uint32_t> var_nets;
    for (int i = 0; i < vars; ++i) var_nets.push_back(n.add_input("x"));
    SynthContext ctx(n);
    n.mark_output(ctx.sop(cover, var_nets), "f");

    for (std::uint64_t a = 0; a < (std::uint64_t{1} << vars); ++a) {
      EXPECT_EQ(n.eval_single(a) & 1,
                static_cast<std::uint64_t>(cover.evaluate(a)))
          << "trial " << trial << " assignment " << a;
    }
  }
}

TEST(Synth, XorTreeParity) {
  Netlist n;
  std::vector<std::uint32_t> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(n.add_input("x"));
  SynthContext ctx(n);
  n.mark_output(ctx.xor_tree(ins), "p");
  for (std::uint64_t a = 0; a < 512; a += 37) {
    EXPECT_EQ(n.eval_single(a) & 1,
              static_cast<std::uint64_t>(std::popcount(a & 0x1ff) & 1));
  }
}

TEST(Synth, TreesRespectMaxFanin) {
  Netlist n;
  std::vector<std::uint32_t> ins;
  for (int i = 0; i < 17; ++i) ins.push_back(n.add_input("x"));
  SynthOptions so;
  so.max_fanin = 3;
  SynthContext ctx(n, so);
  ctx.and_tree(ins);
  for (std::uint32_t id = 0; id < n.num_nets(); ++id) {
    EXPECT_LE(n.gate(id).fanins.size(), 3u);
  }
}

TEST(Synth, EmptyTreesAreIdentityConstants) {
  Netlist n;
  SynthContext ctx(n);
  const auto and0 = ctx.and_tree({});
  const auto or0 = ctx.or_tree({});
  const auto xor0 = ctx.xor_tree({});
  n.mark_output(and0, "a");
  n.mark_output(or0, "o");
  n.mark_output(xor0, "x");
  const std::uint64_t out = n.eval_single(0);
  EXPECT_EQ(out & 1, 1u);
  EXPECT_EQ((out >> 1) & 1, 0u);
  EXPECT_EQ((out >> 2) & 1, 0u);
}

TEST(Synth, InverterSharing) {
  Netlist n;
  const auto a = n.add_input("a");
  SynthContext ctx(n);
  const auto i1 = ctx.inverted(a);
  const auto i2 = ctx.inverted(a);
  EXPECT_EQ(i1, i2);
}

TEST(Synth, ComparatorDetectsAnyDifference) {
  Netlist n;
  std::vector<std::uint32_t> a, b;
  for (int i = 0; i < 4; ++i) a.push_back(n.add_input("a"));
  for (int i = 0; i < 4; ++i) b.push_back(n.add_input("b"));
  SynthContext ctx(n);
  n.mark_output(ctx.comparator(a, b), "err");
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(n.eval_single(x | (y << 4)) & 1,
                static_cast<std::uint64_t>(x != y));
    }
  }
}

TEST(Area, GateCountExcludesBufsAndConsts) {
  Netlist n;
  const auto a = n.add_input("a");
  n.add_const(true);
  const auto buf = n.add_gate(GateType::kBuf, {a});
  n.add_gate(GateType::kNot, {buf});
  EXPECT_EQ(n.gate_count(), 1u);
}

TEST(Area, MeasureAreaSumsLibraryCells) {
  Netlist n;
  const auto a = n.add_input("a");
  const auto b = n.add_input("b");
  n.add_gate(GateType::kAnd, {a, b});
  n.add_gate(GateType::kNot, {a});
  const CellLibrary& lib = CellLibrary::mcnc();
  const AreaReport r = measure_area(n, lib, 2);
  EXPECT_EQ(r.gates, 2u);
  EXPECT_DOUBLE_EQ(r.area, lib.and2 + lib.inv + 2 * lib.dff);
}

TEST(Area, WideGateCostsMoreThanPair) {
  const CellLibrary& lib = CellLibrary::mcnc();
  EXPECT_GT(lib.gate_area(GateType::kAnd, 4),
            lib.gate_area(GateType::kAnd, 2));
  EXPECT_THROW(lib.gate_area(GateType::kAnd, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ced::logic
