#include "logic/blif.hpp"

#include <gtest/gtest.h>

#include "benchdata/handwritten.hpp"
#include "core/rng.hpp"
#include "fsm/synthesize.hpp"
#include "kiss/kiss.hpp"
#include "logic/synth.hpp"

namespace ced::logic {
namespace {

Netlist random_netlist(std::uint64_t seed, int inputs, int gates) {
  ced::core::Rng rng(seed);
  Netlist n;
  std::vector<std::uint32_t> nets;
  for (int i = 0; i < inputs; ++i) {
    nets.push_back(n.add_input("pi" + std::to_string(i)));
  }
  nets.push_back(n.add_const(false));
  nets.push_back(n.add_const(true));
  for (int g = 0; g < gates; ++g) {
    const GateType t = static_cast<GateType>(3 + rng.next() % 8);
    const int fanin = (t == GateType::kBuf || t == GateType::kNot)
                          ? 1
                          : 1 + static_cast<int>(rng.next() % 3);
    std::vector<std::uint32_t> fi;
    for (int k = 0; k < fanin; ++k) fi.push_back(nets[rng.next() % nets.size()]);
    nets.push_back(n.add_gate(t, fi));
  }
  n.mark_output(nets.back(), "po0");
  n.mark_output(nets[nets.size() / 2], "po1");
  return n;
}

void expect_equivalent(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  const std::uint64_t space = std::uint64_t{1} << a.num_inputs();
  for (std::uint64_t v = 0; v < space; ++v) {
    ASSERT_EQ(a.eval_single(v), b.eval_single(v)) << v;
  }
}

class BlifRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRoundTrip, RandomNetlistsSurvive) {
  const Netlist n = random_netlist(GetParam(), 5, 30);
  const Netlist back = read_blif(write_blif(n, "rt"));
  expect_equivalent(n, back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTrip,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST(Blif, FsmCircuitRoundTrips) {
  const fsm::Fsm f = fsm::Fsm::from_kiss(
      kiss::parse(benchdata::handwritten_kiss("vending")));
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const Netlist back = read_blif(write_blif(c.netlist, "vending"));
  expect_equivalent(c.netlist, back);
}

TEST(Blif, ReadsHandWrittenText) {
  const char* text = R"(.model adder
# half adder
.inputs a b
.outputs sum carry
.names a b sum
01 1
10 1
.names a b carry
11 1
.end
)";
  const Netlist n = read_blif(text);
  ASSERT_EQ(n.num_inputs(), 2u);
  ASSERT_EQ(n.num_outputs(), 2u);
  for (std::uint64_t v = 0; v < 4; ++v) {
    const bool a = v & 1, b = v & 2;
    const std::uint64_t out = n.eval_single(v);
    EXPECT_EQ(out & 1, static_cast<std::uint64_t>(a != b));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(a && b));
  }
}

TEST(Blif, OutputPlaneZeroMeansComplement) {
  const char* text = R"(.model inv
.inputs a b
.outputs f
.names a b f
11 0
.end
)";
  const Netlist n = read_blif(text);  // f = NAND(a, b)
  EXPECT_EQ(n.eval_single(0b11) & 1, 0u);
  EXPECT_EQ(n.eval_single(0b01) & 1, 1u);
}

TEST(Blif, BlocksMayAppearOutOfOrder) {
  const char* text = R"(.model ooo
.inputs a
.outputs f
.names t f
1 1
.names a t
0 1
.end
)";
  const Netlist n = read_blif(text);
  EXPECT_EQ(n.eval_single(0) & 1, 1u);
  EXPECT_EQ(n.eval_single(1) & 1, 0u);
}

TEST(Blif, RejectsBrokenInput) {
  EXPECT_THROW(read_blif(".inputs a\n.outputs f\n.names a f\n1 1\n.end\n"),
               std::runtime_error);  // missing .model
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n.end\n"),
               std::runtime_error);  // f undriven
  EXPECT_THROW(
      read_blif(".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n"),
      std::runtime_error);  // sequential constructs unsupported
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n"
                         ".names f g\n1 1\n.names g f\n1 1\n.end\n"),
               std::runtime_error);  // combinational cycle
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs f\n"
                         ".names a f\n1 1\n10 1\n.end\n"),
               std::runtime_error);  // row width mismatch
}

TEST(Verilog, MentionsEveryInterfaceName) {
  const fsm::Fsm f =
      fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss("traffic")));
  const fsm::FsmCircuit c =
      fsm::synthesize_fsm(f, fsm::EncodingKind::kBinary, {});
  const std::string v = write_verilog(c.netlist, "traffic");
  EXPECT_NE(v.find("module traffic("), std::string::npos);
  for (std::size_t i = 0; i < c.netlist.num_inputs(); ++i) {
    EXPECT_NE(v.find("input " + c.netlist.input_name(i)), std::string::npos);
  }
  for (std::size_t o = 0; o < c.netlist.num_outputs(); ++o) {
    EXPECT_NE(v.find("output " + c.netlist.output_name(o)),
              std::string::npos);
  }
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

}  // namespace
}  // namespace ced::logic
