// Resume determinism: a run interrupted at any shard boundary and resumed
// later — possibly with a different thread count — must produce the same
// detectability table *byte for byte* (and hence the same parity scheme)
// as an uninterrupted run. This is the contract that makes checkpoints
// trustworthy: resuming never changes the answer, only the wall-clock.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "benchdata/handwritten.hpp"
#include "common/io.hpp"
#include "core/pipeline.hpp"
#include "core/run.hpp"
#include "kiss/kiss.hpp"
#include "storage/store.hpp"

namespace ced::storage {
namespace {

namespace fs = std::filesystem;

constexpr int kLatency = 2;
constexpr int kShards = 4;

fsm::Fsm machine() {
  return fsm::Fsm::from_kiss(
      kiss::parse(benchdata::handwritten_kiss("traffic")));
}

struct RunSpec {
  bool resume = false;
  int threads = 1;
  int max_new_shards = 0;  ///< 0 = run to completion
};

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char buf[] = "/tmp/ced_resume_test_XXXXXX";
    ASSERT_NE(::mkdtemp(buf), nullptr);
    dir_ = buf;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path fresh_dir(const std::string& tag) {
    const fs::path p = dir_ / tag;
    fs::create_directories(p);
    return p;
  }

  static core::PipelineReport run_in(const fs::path& dir, const RunSpec& spec) {
    ArtifactStore store(dir);
    StoreArchive archive(store);
    core::PipelineOptions opts;
    opts.latency = kLatency;
    opts.threads = spec.threads;
    opts.archive = &archive;
    opts.resume = spec.resume;
    opts.checkpoint_shards = kShards;
    opts.max_new_shards = spec.max_new_shards;
    return ced::run_pipeline(machine(), ced::RunConfig::wrap(opts));
  }

  static std::vector<std::string> names_with_prefix(const fs::path& dir,
                                                    const std::string& prefix) {
    ArtifactStore store(dir);
    std::vector<std::string> out;
    for (const std::string& name : store.list()) {
      if (name.rfind(prefix, 0) == 0) out.push_back(name);
    }
    return out;
  }

  /// Bytes of the (single) cached table bundle in `dir`.
  static std::string tab_bytes(const fs::path& dir) {
    const auto tabs = names_with_prefix(dir, "tab-");
    EXPECT_EQ(tabs.size(), 1u);
    if (tabs.size() != 1) return {};
    auto bytes = io::read_file(dir / (tabs[0] + ".ced"));
    EXPECT_TRUE(bytes.has_value()) << bytes.status().to_text();
    return bytes ? *bytes : std::string();
  }

  fs::path dir_;
};

TEST_F(ResumeTest, InterruptedRunsResumeByteIdentical) {
  // Uninterrupted reference run (serial).
  const fs::path ref_dir = fresh_dir("ref");
  const core::PipelineReport ref = run_in(ref_dir, {});
  ASSERT_FALSE(ref.resilience.degraded());
  const std::string ref_bytes = tab_bytes(ref_dir);
  ASSERT_FALSE(ref_bytes.empty());

  for (const int shards_done : {1, 2, 3}) {
    for (const int threads : {1, 4}) {
      const std::string tag =
          "s" + std::to_string(shards_done) + "t" + std::to_string(threads);
      const fs::path dir = fresh_dir(tag);

      // Interrupt deterministically after `shards_done` new shards.
      RunSpec interrupted;
      interrupted.threads = threads;
      interrupted.max_new_shards = shards_done;
      const core::PipelineReport partial = run_in(dir, interrupted);
      EXPECT_TRUE(partial.resilience.degraded()) << tag;
      EXPECT_EQ(names_with_prefix(dir, "shard-").size(),
                static_cast<std::size_t>(shards_done))
          << tag;
      EXPECT_TRUE(names_with_prefix(dir, "tab-").empty()) << tag;

      // Resume: only the remaining shards are computed.
      RunSpec resumed;
      resumed.resume = true;
      resumed.threads = threads;
      const core::PipelineReport rep = run_in(dir, resumed);
      EXPECT_FALSE(rep.resilience.degraded()) << tag;
      EXPECT_EQ(rep.parities, ref.parities) << tag;
      EXPECT_EQ(rep.num_cases, ref.num_cases) << tag;
      EXPECT_EQ(tab_bytes(dir), ref_bytes)
          << tag << ": resumed table differs from uninterrupted run";
      // Completed bundle supersedes the checkpoints.
      EXPECT_TRUE(names_with_prefix(dir, "shard-").empty()) << tag;
    }
  }
}

TEST_F(ResumeTest, DeadlineTripThenResumeCompletes) {
  const fs::path ref_dir = fresh_dir("ref");
  const core::PipelineReport ref = run_in(ref_dir, {});
  const std::string ref_bytes = tab_bytes(ref_dir);

  const fs::path dir = fresh_dir("deadline");
  {
    // An (effectively) already-expired wall-clock budget: extraction trips
    // immediately, every shard is truncated, and — critically — no
    // truncated checkpoint is persisted to poison a later resume.
    ArtifactStore store(dir);
    StoreArchive archive(store);
    core::PipelineOptions opts;
    opts.latency = kLatency;
    opts.threads = 1;
    opts.archive = &archive;
    opts.checkpoint_shards = kShards;
    opts.budget.wall_seconds = 1e-9;
    const core::PipelineReport tripped = ced::run_pipeline(machine(), ced::RunConfig::wrap(opts));
    EXPECT_TRUE(tripped.resilience.degraded());
    EXPECT_TRUE(names_with_prefix(dir, "tab-").empty());
    EXPECT_TRUE(names_with_prefix(dir, "shard-").empty());
  }

  RunSpec resumed;
  resumed.resume = true;
  const core::PipelineReport rep = run_in(dir, resumed);
  EXPECT_FALSE(rep.resilience.degraded());
  EXPECT_EQ(rep.parities, ref.parities);
  EXPECT_EQ(tab_bytes(dir), ref_bytes);
}

TEST_F(ResumeTest, CorruptedCheckpointIsRecomputedIdentically) {
  const fs::path ref_dir = fresh_dir("ref");
  const core::PipelineReport ref = run_in(ref_dir, {});
  const std::string ref_bytes = tab_bytes(ref_dir);

  const fs::path dir = fresh_dir("corrupt");
  RunSpec interrupted;
  interrupted.max_new_shards = 2;
  const core::PipelineReport partial = run_in(dir, interrupted);
  EXPECT_TRUE(partial.resilience.degraded());
  const auto shards = names_with_prefix(dir, "shard-");
  ASSERT_EQ(shards.size(), 2u);

  // Flip a bit in the first checkpoint on disk.
  const fs::path victim = dir / (shards[0] + ".ced");
  auto bytes = io::read_file(victim);
  ASSERT_TRUE(bytes.has_value());
  std::string mutated = *bytes;
  mutated[mutated.size() / 2] =
      static_cast<char>(mutated[mutated.size() / 2] ^ 0x08);
  {
    std::ofstream out(victim, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }

  RunSpec resumed;
  resumed.resume = true;
  const core::PipelineReport rep = run_in(dir, resumed);
  // The bad checkpoint was quarantined, its shard recomputed, and the final
  // table is still byte-identical — never a wrong answer from corrupt state.
  EXPECT_FALSE(rep.resilience.degraded());
  ASSERT_FALSE(rep.resilience.store_events.empty());
  EXPECT_NE(rep.resilience.store_events[0].find("quarantined"),
            std::string::npos);
  EXPECT_EQ(rep.parities, ref.parities);
  EXPECT_EQ(tab_bytes(dir), ref_bytes);
}

TEST_F(ResumeTest, WarmCacheSkipsExtractionEntirely) {
  const fs::path dir = fresh_dir("warm");
  const core::PipelineReport cold = run_in(dir, {});
  ASSERT_FALSE(cold.resilience.degraded());

  // The warm run is given a shard quota that would force truncation if
  // extraction actually ran; a full-quality result therefore proves the
  // whole stage was served from the store.
  RunSpec warm;
  warm.max_new_shards = 1;
  const core::PipelineReport rep = run_in(dir, warm);
  EXPECT_FALSE(rep.resilience.degraded());
  EXPECT_EQ(rep.parities, cold.parities);
  EXPECT_EQ(rep.num_cases, cold.num_cases);
  EXPECT_TRUE(rep.resilience.store_events.empty());
}

}  // namespace
}  // namespace ced::storage
