// Tests for the observability layer (src/obs): metric semantics, shard
// folding under worker threads, explicit span parenting across
// parallel_for, deterministic exporters (golden strings), the StageClock
// telescoping invariant, RunConfig builder validation + digest stability,
// and the load-bearing promise of the whole layer: q and the selected
// parities are byte-identical with observability on or off, at any thread
// count.

#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchdata/handwritten.hpp"
#include "common/parallel.hpp"
#include "core/run.hpp"
#include "kiss/kiss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ced {
namespace {

// ------------------------------------------------------------- metrics

TEST(Metrics, HistogramEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 5.0});
  h.observe(1.0);  // == edge: lands in the first bucket (le semantics)
  h.observe(1.5);
  h.observe(5.0);
  h.observe(7.0);  // above every edge: +Inf bucket
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 14.5);
}

TEST(Metrics, NullRegistryShardIsANoOp) {
  obs::MetricsShard shard;  // no registry
  EXPECT_FALSE(shard.enabled());
  shard.add("ced_whatever_total", 7);
  shard.observe("ced_whatever_hist", 1.0);
  shard.flush();  // must not crash
}

TEST(Metrics, ShardsFoldExactlyUnderFourWorkers) {
  obs::MetricsRegistry reg;
  reg.define_histogram("work_items", {10.0, 100.0});
  constexpr std::size_t kItems = 200;
  // One shard per work item, folded on scope exit from four pool threads
  // concurrently: every count must land, none may be double-folded.
  parallel_for(4, kItems, [&](std::size_t i) {
    obs::MetricsShard shard(&reg);
    shard.add("items_total");
    shard.add("units_total", 3);
    shard.observe("work_items", static_cast<double>(i));
  });
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("items_total"), kItems);
  EXPECT_EQ(snap.counters.at("units_total"), 3 * kItems);
  const obs::Histogram& h = snap.histograms.at("work_items");
  EXPECT_EQ(h.total, kItems);
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 11u);   // 0..10 inclusive
  EXPECT_EQ(h.counts[1], 90u);   // 11..100
  EXPECT_EQ(h.counts[2], 99u);   // 101..199
}

// --------------------------------------------------------------- spans

TEST(Trace, SpansNestExplicitlyAcrossParallelFor) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const obs::Sinks sinks{&tracer, &metrics, 0};
  {
    obs::ScopedSpan stage(sinks, "stage");
    ASSERT_NE(stage.id(), 0u);
    // Worker spans on pool threads parent under the stage purely because
    // the stage id was passed down — no thread-local ambient span.
    const obs::Sinks worker_sinks = sinks.under(stage.id());
    parallel_for(4, 8, [&](std::size_t i) {
      obs::ScopedSpan worker(worker_sinks, "worker");
      worker.attr("shard", static_cast<std::uint64_t>(i));
    });
  }
  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 9u);
  const obs::SpanRecord& stage = spans.front();  // earliest start
  EXPECT_EQ(stage.name, "stage");
  EXPECT_EQ(stage.parent, 0u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].name, "worker");
    EXPECT_EQ(spans[i].parent, stage.id);
    ASSERT_EQ(spans[i].attrs.size(), 1u);
    EXPECT_EQ(spans[i].attrs[0].first, "shard");
  }
}

TEST(Trace, RingBufferDropsOldestAndCounts) {
  obs::Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::ScopedSpan span(&tracer, "s" + std::to_string(i));
  }
  EXPECT_EQ(tracer.snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(Trace, StageClockLapsTelescopeToTotal) {
  obs::StageClock clock;
  double sum = 0.0;
  for (int stage = 0; stage < 5; ++stage) sum += clock.lap();
  // One shared clock sample per boundary: the laps telescope, so their
  // sum IS the total — exactly, not approximately.
  EXPECT_DOUBLE_EQ(sum, clock.total());
}

// ----------------------------------------------------------- exporters

obs::MetricsSnapshot golden_snapshot() {
  obs::MetricsRegistry reg;
  reg.define_histogram("h", {1.0, 2.0});
  reg.add("c", 2);
  reg.set_gauge("g", 1.5);
  reg.observe("h", 0.5);
  reg.observe("h", 3.0);
  return reg.snapshot();
}

TEST(Export, MetricsJsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"c\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g\": 1.500000\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h\": {\"edges\": [1.000000, 2.000000], \"counts\": [1, 0, 1], "
      "\"sum\": 3.500000, \"count\": 2}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(obs::metrics_json(golden_snapshot()), expected);
}

TEST(Export, PrometheusTextGolden) {
  const std::string expected =
      "# TYPE c counter\n"
      "c 2\n"
      "# TYPE g gauge\n"
      "g 1.500000\n"
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 1\n"
      "h_bucket{le=\"2\"} 1\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 3.500000\n"
      "h_count 2\n";
  EXPECT_EQ(obs::prometheus_text(golden_snapshot()), expected);
}

std::vector<obs::SpanRecord> golden_spans() {
  obs::SpanRecord root;
  root.id = 1;
  root.name = "pipeline";
  root.start_s = 0.0;
  root.dur_s = 2.0;
  obs::SpanRecord child;
  child.id = 2;
  child.parent = 1;
  child.name = "solve";
  child.start_s = 0.5;
  child.dur_s = 1.0;
  child.attrs.emplace_back("q", "3");
  return {root, child};
}

TEST(Export, TraceJsonGolden) {
  const std::string expected =
      "{\n"
      "  \"dropped\": 3,\n"
      "  \"spans\": [\n"
      "    {\"id\": 1, \"parent\": 0, \"name\": \"pipeline\", "
      "\"start_s\": 0.000000, \"dur_s\": 2.000000, \"attrs\": {}},\n"
      "    {\"id\": 2, \"parent\": 1, \"name\": \"solve\", "
      "\"start_s\": 0.500000, \"dur_s\": 1.000000, \"attrs\": "
      "{\"q\": \"3\"}}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(obs::trace_json(golden_spans(), 3), expected);
}

TEST(Export, ExplainTreeGolden) {
  const std::string expected =
      "    2.000s 100.0%  pipeline\n"
      "    1.000s  50.0%    solve  q=3\n";
  EXPECT_EQ(obs::explain_tree(golden_spans(), {}), expected);
}

// ----------------------------------------------- pipeline determinism

fsm::Fsm machine(const std::string& name) {
  return fsm::Fsm::from_kiss(kiss::parse(benchdata::handwritten_kiss(name)));
}

core::PipelineReport run_observed(const fsm::Fsm& f, int threads,
                                  obs::Tracer* tracer,
                                  obs::MetricsRegistry* metrics) {
  RunConfig::Builder b;
  b.latency(2).threads(threads);
  if (tracer != nullptr || metrics != nullptr) {
    b.observe({tracer, metrics, 0});
  }
  const Result<RunConfig> cfg = b.build();
  EXPECT_TRUE(cfg.has_value());
  return ced::run_pipeline(f, *cfg);
}

TEST(ObsDeterminism, ResultsAreByteIdenticalWithObsOnOrOff) {
  const fsm::Fsm f = machine("link_rx");
  const core::PipelineReport baseline =
      run_observed(f, 1, nullptr, nullptr);
  for (const int threads : {1, 4}) {
    obs::Tracer tracer;
    obs::MetricsRegistry metrics;
    const core::PipelineReport plain =
        run_observed(f, threads, nullptr, nullptr);
    const core::PipelineReport observed =
        run_observed(f, threads, &tracer, &metrics);
    EXPECT_EQ(plain.parities, baseline.parities) << "threads=" << threads;
    EXPECT_EQ(observed.parities, baseline.parities) << "threads=" << threads;
    EXPECT_EQ(observed.num_trees, baseline.num_trees);

    // The observed run actually recorded something sensible.
    const std::vector<obs::SpanRecord> spans = tracer.snapshot();
    ASSERT_FALSE(spans.empty());
    EXPECT_EQ(spans.front().name, "pipeline");
    bool saw_solve = false;
    for (const obs::SpanRecord& s : spans) saw_solve |= s.name == "solve";
    EXPECT_TRUE(saw_solve);
    const obs::MetricsSnapshot snap = metrics.snapshot();
    EXPECT_GT(snap.counters.at("ced_extract_cases_total"), 0u);
  }
}

// ------------------------------------------------- RunConfig contract

TEST(RunConfig, BuilderRejectsOutOfContractKnobs) {
  const auto bad_latency = RunConfig::Builder().latency(0).build();
  ASSERT_FALSE(bad_latency.has_value());
  EXPECT_EQ(bad_latency.status().code, StatusCode::kInvalidInput);
  EXPECT_NE(bad_latency.status().message.find("latency"), std::string::npos);

  const auto bad_threads = RunConfig::Builder().threads(-2).build();
  ASSERT_FALSE(bad_threads.has_value());
  EXPECT_NE(bad_threads.status().message.find("threads"), std::string::npos);

  const auto bad_resume = RunConfig::Builder().resume(true).build();
  ASSERT_FALSE(bad_resume.has_value());
  EXPECT_NE(bad_resume.status().message.find("archive"), std::string::npos);

  EXPECT_TRUE(RunConfig::Builder().build().has_value());
}

TEST(RunConfig, DigestCoversResultShapingKnobsOnly) {
  const RunConfig base = *RunConfig::Builder().latency(2).build();
  const RunConfig same = *RunConfig::Builder().latency(2).build();
  EXPECT_EQ(base.digest(), same.digest());
  EXPECT_EQ(base.digest().size(), 32u);

  // Result-shaping knobs change the digest...
  const RunConfig other_latency = *RunConfig::Builder().latency(3).build();
  EXPECT_NE(base.digest(), other_latency.digest());
  const RunConfig other_solver =
      *RunConfig::Builder().latency(2).solver(core::SolverKind::kGreedy)
           .build();
  EXPECT_NE(base.digest(), other_solver.digest());

  // ...pure execution knobs (threads, obs sinks) deliberately do not.
  const RunConfig threaded = *RunConfig::Builder().latency(2).threads(7)
                                  .build();
  EXPECT_EQ(base.digest(), threaded.digest());
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  const RunConfig observed = *RunConfig::Builder()
                                  .latency(2)
                                  .observe({&tracer, &metrics, 0})
                                  .build();
  EXPECT_EQ(base.digest(), observed.digest());
}

}  // namespace
}  // namespace ced
