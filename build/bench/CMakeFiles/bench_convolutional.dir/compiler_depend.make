# Empty compiler generated dependencies file for bench_convolutional.
# This may be replaced when dependencies are built.
