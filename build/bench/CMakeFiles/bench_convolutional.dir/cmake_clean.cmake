file(REMOVE_RECURSE
  "CMakeFiles/bench_convolutional.dir/bench_convolutional.cpp.o"
  "CMakeFiles/bench_convolutional.dir/bench_convolutional.cpp.o.d"
  "bench_convolutional"
  "bench_convolutional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convolutional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
