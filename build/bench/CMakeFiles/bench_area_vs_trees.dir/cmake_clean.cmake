file(REMOVE_RECURSE
  "CMakeFiles/bench_area_vs_trees.dir/bench_area_vs_trees.cpp.o"
  "CMakeFiles/bench_area_vs_trees.dir/bench_area_vs_trees.cpp.o.d"
  "bench_area_vs_trees"
  "bench_area_vs_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_vs_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
