file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_quality.dir/bench_solver_quality.cpp.o"
  "CMakeFiles/bench_solver_quality.dir/bench_solver_quality.cpp.o.d"
  "bench_solver_quality"
  "bench_solver_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
