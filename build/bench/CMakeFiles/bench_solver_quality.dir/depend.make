# Empty dependencies file for bench_solver_quality.
# This may be replaced when dependencies are built.
