# Empty compiler generated dependencies file for bench_area_aware.
# This may be replaced when dependencies are built.
