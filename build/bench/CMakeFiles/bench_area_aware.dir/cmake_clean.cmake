file(REMOVE_RECURSE
  "CMakeFiles/bench_area_aware.dir/bench_area_aware.cpp.o"
  "CMakeFiles/bench_area_aware.dir/bench_area_aware.cpp.o.d"
  "bench_area_aware"
  "bench_area_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
