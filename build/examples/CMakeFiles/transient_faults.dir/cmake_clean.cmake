file(REMOVE_RECURSE
  "CMakeFiles/transient_faults.dir/transient_faults.cpp.o"
  "CMakeFiles/transient_faults.dir/transient_faults.cpp.o.d"
  "transient_faults"
  "transient_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
