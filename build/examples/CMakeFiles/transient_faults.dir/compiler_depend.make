# Empty compiler generated dependencies file for transient_faults.
# This may be replaced when dependencies are built.
