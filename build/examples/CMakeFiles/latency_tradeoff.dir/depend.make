# Empty dependencies file for latency_tradeoff.
# This may be replaced when dependencies are built.
