file(REMOVE_RECURSE
  "CMakeFiles/latency_tradeoff.dir/latency_tradeoff.cpp.o"
  "CMakeFiles/latency_tradeoff.dir/latency_tradeoff.cpp.o.d"
  "latency_tradeoff"
  "latency_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
