# Empty dependencies file for kiss_roundtrip.
# This may be replaced when dependencies are built.
