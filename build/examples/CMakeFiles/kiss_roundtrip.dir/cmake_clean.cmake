file(REMOVE_RECURSE
  "CMakeFiles/kiss_roundtrip.dir/kiss_roundtrip.cpp.o"
  "CMakeFiles/kiss_roundtrip.dir/kiss_roundtrip.cpp.o.d"
  "kiss_roundtrip"
  "kiss_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiss_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
