# Empty dependencies file for verify_detection.
# This may be replaced when dependencies are built.
