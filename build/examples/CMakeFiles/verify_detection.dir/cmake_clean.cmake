file(REMOVE_RECURSE
  "CMakeFiles/verify_detection.dir/verify_detection.cpp.o"
  "CMakeFiles/verify_detection.dir/verify_detection.cpp.o.d"
  "verify_detection"
  "verify_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
