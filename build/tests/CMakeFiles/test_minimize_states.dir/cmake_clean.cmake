file(REMOVE_RECURSE
  "CMakeFiles/test_minimize_states.dir/test_minimize_states.cpp.o"
  "CMakeFiles/test_minimize_states.dir/test_minimize_states.cpp.o.d"
  "test_minimize_states"
  "test_minimize_states.pdb"
  "test_minimize_states[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimize_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
