# Empty dependencies file for test_minimize_states.
# This may be replaced when dependencies are built.
