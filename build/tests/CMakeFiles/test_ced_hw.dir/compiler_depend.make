# Empty compiler generated dependencies file for test_ced_hw.
# This may be replaced when dependencies are built.
