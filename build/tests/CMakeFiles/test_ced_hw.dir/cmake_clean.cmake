file(REMOVE_RECURSE
  "CMakeFiles/test_ced_hw.dir/test_ced_hw.cpp.o"
  "CMakeFiles/test_ced_hw.dir/test_ced_hw.cpp.o.d"
  "test_ced_hw"
  "test_ced_hw.pdb"
  "test_ced_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ced_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
