# Empty dependencies file for test_area_aware.
# This may be replaced when dependencies are built.
