file(REMOVE_RECURSE
  "CMakeFiles/test_area_aware.dir/test_area_aware.cpp.o"
  "CMakeFiles/test_area_aware.dir/test_area_aware.cpp.o.d"
  "test_area_aware"
  "test_area_aware.pdb"
  "test_area_aware[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
