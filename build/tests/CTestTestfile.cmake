# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitvec[1]_include.cmake")
include("/root/repo/build/tests/test_cube[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_kiss[1]_include.cmake")
include("/root/repo/build/tests/test_fsm[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_extract[1]_include.cmake")
include("/root/repo/build/tests/test_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_ced_hw[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_benchdata[1]_include.cmake")
include("/root/repo/build/tests/test_latency[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_area_aware[1]_include.cmake")
include("/root/repo/build/tests/test_convolutional[1]_include.cmake")
include("/root/repo/build/tests/test_minimize_states[1]_include.cmake")
include("/root/repo/build/tests/test_blif[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
