
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/analysis.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/analysis.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/analysis.cpp.o.d"
  "/root/repo/src/fsm/encoded.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/encoded.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/encoded.cpp.o.d"
  "/root/repo/src/fsm/encoding.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/encoding.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/encoding.cpp.o.d"
  "/root/repo/src/fsm/fsm.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/fsm.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/fsm.cpp.o.d"
  "/root/repo/src/fsm/minimize_states.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/minimize_states.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/minimize_states.cpp.o.d"
  "/root/repo/src/fsm/synthesize.cpp" "src/fsm/CMakeFiles/ced_fsm.dir/synthesize.cpp.o" "gcc" "src/fsm/CMakeFiles/ced_fsm.dir/synthesize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/ced_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/ced_kiss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
