file(REMOVE_RECURSE
  "CMakeFiles/ced_fsm.dir/analysis.cpp.o"
  "CMakeFiles/ced_fsm.dir/analysis.cpp.o.d"
  "CMakeFiles/ced_fsm.dir/encoded.cpp.o"
  "CMakeFiles/ced_fsm.dir/encoded.cpp.o.d"
  "CMakeFiles/ced_fsm.dir/encoding.cpp.o"
  "CMakeFiles/ced_fsm.dir/encoding.cpp.o.d"
  "CMakeFiles/ced_fsm.dir/fsm.cpp.o"
  "CMakeFiles/ced_fsm.dir/fsm.cpp.o.d"
  "CMakeFiles/ced_fsm.dir/minimize_states.cpp.o"
  "CMakeFiles/ced_fsm.dir/minimize_states.cpp.o.d"
  "CMakeFiles/ced_fsm.dir/synthesize.cpp.o"
  "CMakeFiles/ced_fsm.dir/synthesize.cpp.o.d"
  "libced_fsm.a"
  "libced_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
