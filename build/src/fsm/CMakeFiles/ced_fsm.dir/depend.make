# Empty dependencies file for ced_fsm.
# This may be replaced when dependencies are built.
