file(REMOVE_RECURSE
  "libced_fsm.a"
)
