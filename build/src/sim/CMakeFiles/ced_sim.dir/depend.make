# Empty dependencies file for ced_sim.
# This may be replaced when dependencies are built.
