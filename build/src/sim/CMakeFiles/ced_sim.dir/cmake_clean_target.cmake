file(REMOVE_RECURSE
  "libced_sim.a"
)
