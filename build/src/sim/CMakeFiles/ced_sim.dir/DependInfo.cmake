
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault_sim.cpp" "src/sim/CMakeFiles/ced_sim.dir/fault_sim.cpp.o" "gcc" "src/sim/CMakeFiles/ced_sim.dir/fault_sim.cpp.o.d"
  "/root/repo/src/sim/faults.cpp" "src/sim/CMakeFiles/ced_sim.dir/faults.cpp.o" "gcc" "src/sim/CMakeFiles/ced_sim.dir/faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/ced_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/ced_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/ced_kiss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
