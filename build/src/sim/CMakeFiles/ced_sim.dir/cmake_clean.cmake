file(REMOVE_RECURSE
  "CMakeFiles/ced_sim.dir/fault_sim.cpp.o"
  "CMakeFiles/ced_sim.dir/fault_sim.cpp.o.d"
  "CMakeFiles/ced_sim.dir/faults.cpp.o"
  "CMakeFiles/ced_sim.dir/faults.cpp.o.d"
  "libced_sim.a"
  "libced_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
