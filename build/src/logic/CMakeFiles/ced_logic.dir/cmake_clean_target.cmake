file(REMOVE_RECURSE
  "libced_logic.a"
)
