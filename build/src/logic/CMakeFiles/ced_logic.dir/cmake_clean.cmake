file(REMOVE_RECURSE
  "CMakeFiles/ced_logic.dir/area.cpp.o"
  "CMakeFiles/ced_logic.dir/area.cpp.o.d"
  "CMakeFiles/ced_logic.dir/bitvec.cpp.o"
  "CMakeFiles/ced_logic.dir/bitvec.cpp.o.d"
  "CMakeFiles/ced_logic.dir/blif.cpp.o"
  "CMakeFiles/ced_logic.dir/blif.cpp.o.d"
  "CMakeFiles/ced_logic.dir/cover.cpp.o"
  "CMakeFiles/ced_logic.dir/cover.cpp.o.d"
  "CMakeFiles/ced_logic.dir/cube.cpp.o"
  "CMakeFiles/ced_logic.dir/cube.cpp.o.d"
  "CMakeFiles/ced_logic.dir/factor.cpp.o"
  "CMakeFiles/ced_logic.dir/factor.cpp.o.d"
  "CMakeFiles/ced_logic.dir/minimize.cpp.o"
  "CMakeFiles/ced_logic.dir/minimize.cpp.o.d"
  "CMakeFiles/ced_logic.dir/netlist.cpp.o"
  "CMakeFiles/ced_logic.dir/netlist.cpp.o.d"
  "CMakeFiles/ced_logic.dir/opt.cpp.o"
  "CMakeFiles/ced_logic.dir/opt.cpp.o.d"
  "CMakeFiles/ced_logic.dir/synth.cpp.o"
  "CMakeFiles/ced_logic.dir/synth.cpp.o.d"
  "CMakeFiles/ced_logic.dir/truth_table.cpp.o"
  "CMakeFiles/ced_logic.dir/truth_table.cpp.o.d"
  "libced_logic.a"
  "libced_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
