# Empty compiler generated dependencies file for ced_logic.
# This may be replaced when dependencies are built.
