
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/area.cpp" "src/logic/CMakeFiles/ced_logic.dir/area.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/area.cpp.o.d"
  "/root/repo/src/logic/bitvec.cpp" "src/logic/CMakeFiles/ced_logic.dir/bitvec.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/bitvec.cpp.o.d"
  "/root/repo/src/logic/blif.cpp" "src/logic/CMakeFiles/ced_logic.dir/blif.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/blif.cpp.o.d"
  "/root/repo/src/logic/cover.cpp" "src/logic/CMakeFiles/ced_logic.dir/cover.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/cover.cpp.o.d"
  "/root/repo/src/logic/cube.cpp" "src/logic/CMakeFiles/ced_logic.dir/cube.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/cube.cpp.o.d"
  "/root/repo/src/logic/factor.cpp" "src/logic/CMakeFiles/ced_logic.dir/factor.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/factor.cpp.o.d"
  "/root/repo/src/logic/minimize.cpp" "src/logic/CMakeFiles/ced_logic.dir/minimize.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/minimize.cpp.o.d"
  "/root/repo/src/logic/netlist.cpp" "src/logic/CMakeFiles/ced_logic.dir/netlist.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/netlist.cpp.o.d"
  "/root/repo/src/logic/opt.cpp" "src/logic/CMakeFiles/ced_logic.dir/opt.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/opt.cpp.o.d"
  "/root/repo/src/logic/synth.cpp" "src/logic/CMakeFiles/ced_logic.dir/synth.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/synth.cpp.o.d"
  "/root/repo/src/logic/truth_table.cpp" "src/logic/CMakeFiles/ced_logic.dir/truth_table.cpp.o" "gcc" "src/logic/CMakeFiles/ced_logic.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
