# Empty dependencies file for ced_benchdata.
# This may be replaced when dependencies are built.
