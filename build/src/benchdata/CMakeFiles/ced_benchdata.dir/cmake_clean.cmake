file(REMOVE_RECURSE
  "CMakeFiles/ced_benchdata.dir/generator.cpp.o"
  "CMakeFiles/ced_benchdata.dir/generator.cpp.o.d"
  "CMakeFiles/ced_benchdata.dir/handwritten.cpp.o"
  "CMakeFiles/ced_benchdata.dir/handwritten.cpp.o.d"
  "CMakeFiles/ced_benchdata.dir/suite.cpp.o"
  "CMakeFiles/ced_benchdata.dir/suite.cpp.o.d"
  "libced_benchdata.a"
  "libced_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
