file(REMOVE_RECURSE
  "libced_benchdata.a"
)
