
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchdata/generator.cpp" "src/benchdata/CMakeFiles/ced_benchdata.dir/generator.cpp.o" "gcc" "src/benchdata/CMakeFiles/ced_benchdata.dir/generator.cpp.o.d"
  "/root/repo/src/benchdata/handwritten.cpp" "src/benchdata/CMakeFiles/ced_benchdata.dir/handwritten.cpp.o" "gcc" "src/benchdata/CMakeFiles/ced_benchdata.dir/handwritten.cpp.o.d"
  "/root/repo/src/benchdata/suite.cpp" "src/benchdata/CMakeFiles/ced_benchdata.dir/suite.cpp.o" "gcc" "src/benchdata/CMakeFiles/ced_benchdata.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/ced_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/ced_kiss.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/ced_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
