file(REMOVE_RECURSE
  "CMakeFiles/ced_lp.dir/simplex.cpp.o"
  "CMakeFiles/ced_lp.dir/simplex.cpp.o.d"
  "libced_lp.a"
  "libced_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
