# Empty dependencies file for ced_lp.
# This may be replaced when dependencies are built.
