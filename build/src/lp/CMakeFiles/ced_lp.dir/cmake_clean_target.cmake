file(REMOVE_RECURSE
  "libced_lp.a"
)
