# Empty compiler generated dependencies file for ced_core.
# This may be replaced when dependencies are built.
