file(REMOVE_RECURSE
  "libced_core.a"
)
