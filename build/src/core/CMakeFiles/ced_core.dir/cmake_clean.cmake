file(REMOVE_RECURSE
  "CMakeFiles/ced_core.dir/algorithm1.cpp.o"
  "CMakeFiles/ced_core.dir/algorithm1.cpp.o.d"
  "CMakeFiles/ced_core.dir/area_aware.cpp.o"
  "CMakeFiles/ced_core.dir/area_aware.cpp.o.d"
  "CMakeFiles/ced_core.dir/convolutional.cpp.o"
  "CMakeFiles/ced_core.dir/convolutional.cpp.o.d"
  "CMakeFiles/ced_core.dir/duplication.cpp.o"
  "CMakeFiles/ced_core.dir/duplication.cpp.o.d"
  "CMakeFiles/ced_core.dir/exact.cpp.o"
  "CMakeFiles/ced_core.dir/exact.cpp.o.d"
  "CMakeFiles/ced_core.dir/extract.cpp.o"
  "CMakeFiles/ced_core.dir/extract.cpp.o.d"
  "CMakeFiles/ced_core.dir/greedy.cpp.o"
  "CMakeFiles/ced_core.dir/greedy.cpp.o.d"
  "CMakeFiles/ced_core.dir/ilp.cpp.o"
  "CMakeFiles/ced_core.dir/ilp.cpp.o.d"
  "CMakeFiles/ced_core.dir/latency.cpp.o"
  "CMakeFiles/ced_core.dir/latency.cpp.o.d"
  "CMakeFiles/ced_core.dir/parity.cpp.o"
  "CMakeFiles/ced_core.dir/parity.cpp.o.d"
  "CMakeFiles/ced_core.dir/parity_synth.cpp.o"
  "CMakeFiles/ced_core.dir/parity_synth.cpp.o.d"
  "CMakeFiles/ced_core.dir/pipeline.cpp.o"
  "CMakeFiles/ced_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ced_core.dir/verify.cpp.o"
  "CMakeFiles/ced_core.dir/verify.cpp.o.d"
  "libced_core.a"
  "libced_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
