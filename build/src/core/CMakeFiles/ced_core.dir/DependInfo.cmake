
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm1.cpp" "src/core/CMakeFiles/ced_core.dir/algorithm1.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/algorithm1.cpp.o.d"
  "/root/repo/src/core/area_aware.cpp" "src/core/CMakeFiles/ced_core.dir/area_aware.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/area_aware.cpp.o.d"
  "/root/repo/src/core/convolutional.cpp" "src/core/CMakeFiles/ced_core.dir/convolutional.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/convolutional.cpp.o.d"
  "/root/repo/src/core/duplication.cpp" "src/core/CMakeFiles/ced_core.dir/duplication.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/duplication.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/ced_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/extract.cpp" "src/core/CMakeFiles/ced_core.dir/extract.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/extract.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/ced_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/ilp.cpp" "src/core/CMakeFiles/ced_core.dir/ilp.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/ilp.cpp.o.d"
  "/root/repo/src/core/latency.cpp" "src/core/CMakeFiles/ced_core.dir/latency.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/latency.cpp.o.d"
  "/root/repo/src/core/parity.cpp" "src/core/CMakeFiles/ced_core.dir/parity.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/parity.cpp.o.d"
  "/root/repo/src/core/parity_synth.cpp" "src/core/CMakeFiles/ced_core.dir/parity_synth.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/parity_synth.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ced_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/ced_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/ced_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/ced_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/ced_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ced_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ced_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/kiss/CMakeFiles/ced_kiss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
