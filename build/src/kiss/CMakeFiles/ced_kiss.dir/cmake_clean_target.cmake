file(REMOVE_RECURSE
  "libced_kiss.a"
)
