# Empty compiler generated dependencies file for ced_kiss.
# This may be replaced when dependencies are built.
