file(REMOVE_RECURSE
  "CMakeFiles/ced_kiss.dir/kiss.cpp.o"
  "CMakeFiles/ced_kiss.dir/kiss.cpp.o.d"
  "libced_kiss.a"
  "libced_kiss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_kiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
