file(REMOVE_RECURSE
  "CMakeFiles/ced_cli.dir/ced_cli.cpp.o"
  "CMakeFiles/ced_cli.dir/ced_cli.cpp.o.d"
  "ced_cli"
  "ced_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
