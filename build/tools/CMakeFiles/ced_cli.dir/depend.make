# Empty dependencies file for ced_cli.
# This may be replaced when dependencies are built.
